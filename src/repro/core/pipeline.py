"""The end-to-end Red-QAOA pipeline (paper Fig. 4).

:class:`RedQAOA` glues the pieces together:

1. **reduce** -- distill the input graph with the SA reducer;
2. **optimize** -- run the parameter search (COBYLA restarts or grid
   search) on the *distilled* graph, under whatever noise the caller
   specifies (a small circuit, so cheap and noise-tolerant);
3. **transfer** -- reuse the best parameters on the original graph;
4. **fine-tune** -- optionally continue optimization on the original graph
   from the transferred parameters (few iterations, as the start is already
   near-optimal);
5. **solve** -- sample the original graph's QAOA state at the final
   parameters to read out a cut.

Edge weights (the ``weight`` attribute) flow through every step: the SA
reducer matches weighted node strength, induced subgraphs and relabelings
preserve edge data, every expectation engine honors weights, and the cut
readout scores sampled states against the weighted diagonal.

The pipeline is workload-generic: :meth:`RedQAOA.run` accepts either a
MaxCut graph (the paper's setting) or any
:class:`~repro.problems.DiagonalProblem` via ``run(problem=...)`` --
reduction then happens on the coupling graph (field-aware), optimization
on the restricted subproblem, and transfer/readout against the problem's
own diagonal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.core.reduction import GraphReducer, ProblemReductionResult, ReductionResult
from repro.obs.trace import span
from repro.qaoa.expectation import maxcut_evaluator, noisy_maxcut_expectation
from repro.qaoa.fast_sim import FastNoiseSpec, noisy_qaoa_probabilities, qaoa_probabilities
from repro.qaoa.hamiltonian import MaxCutHamiltonian
from repro.qaoa.optimizer import OptimizationTrace, cobyla_optimize, multi_restart_optimize
from repro.utils.graphs import ensure_graph, relabel_to_range
from repro.utils.rng import as_generator

__all__ = ["RedQAOA", "RedQAOAResult"]


@dataclass
class RedQAOAResult:
    """Everything produced by one :meth:`RedQAOA.run`.

    ``expectation`` is the ideal expectation of the final parameters on the
    original graph; ``cut_value``/``assignment`` come from sampling the
    final state (solution-finding step).  For problem runs
    (:meth:`RedQAOA.run` with ``problem=``), ``reduction`` is a
    :class:`~repro.core.reduction.ProblemReductionResult` and
    ``cut_value`` is the best sampled *objective* value of the problem.
    """

    reduction: ReductionResult | ProblemReductionResult
    gammas: np.ndarray
    betas: np.ndarray
    expectation: float
    cut_value: float
    assignment: dict
    reduced_traces: list[OptimizationTrace] = field(default_factory=list)
    finetune_trace: OptimizationTrace | None = None

    @property
    def num_reduced_evaluations(self) -> int:
        """Circuit evaluations spent on the small (cheap) graph."""
        return sum(t.num_evaluations for t in self.reduced_traces)

    @property
    def num_original_evaluations(self) -> int:
        """Circuit evaluations spent on the large (expensive) graph."""
        return self.finetune_trace.num_evaluations if self.finetune_trace else 0


class RedQAOA:
    """Red-QAOA driver: reduce, optimize small, transfer, fine-tune.

    Parameters
    ----------
    p:
        QAOA depth used throughout.
    reducer:
        A configured :class:`~repro.core.reduction.GraphReducer`; a default
        one (0.7 AND threshold, adaptive cooling) is built when omitted.
    noise:
        :class:`~repro.qaoa.fast_sim.FastNoiseSpec` applied during
        optimization, or ``None`` for ideal execution.  The *same* noise is
        applied to both the reduced and (scaled by size) the original
        circuit, mirroring execution on one device.
    restarts / maxiter:
        COBYLA restarts and per-run iteration budget on the reduced graph.
    finetune_maxiter:
        Iteration budget for the final optimization on the original graph
        (0 disables fine-tuning, i.e. pure parameter transfer).
    warm_start:
        When true, the first restart on the distilled graph initializes
        from the degree-indexed :class:`~repro.transfer.ParameterLookup`
        library instead of a random point (Sec. 7.2's complementary
        technique); remaining restarts stay random for exploration.
    plan_cache:
        Optional shared :class:`~repro.qaoa.lightcone.PlanCache`: compiled
        lightcone plans for the graphs/problems this pipeline evaluates are
        banked there and reused across runs (and across pipelines, when the
        batch scheduler hands several jobs one cache).  Reuse is
        result-neutral -- a plan is a pure function of the weighted graph.
    """

    def __init__(
        self,
        p: int = 1,
        reducer: GraphReducer | None = None,
        noise: FastNoiseSpec | None = None,
        restarts: int = 5,
        maxiter: int = 60,
        finetune_maxiter: int = 20,
        trajectories: int = 8,
        shots: int | None = None,
        warm_start: bool = False,
        seed: int | np.random.Generator | None = None,
        plan_cache=None,
    ) -> None:
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        if restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {restarts}")
        if finetune_maxiter < 0:
            raise ValueError(f"finetune_maxiter must be >= 0, got {finetune_maxiter}")
        if shots is not None and shots < 1:
            raise ValueError(f"shots must be >= 1, got {shots}")
        self.p = p
        self._rng = as_generator(seed)
        self.reducer = reducer if reducer is not None else GraphReducer(seed=self._rng)
        self.noise = noise
        self.restarts = restarts
        self.maxiter = maxiter
        self.finetune_maxiter = finetune_maxiter
        self.trajectories = trajectories
        self.shots = shots
        self.warm_start = warm_start
        self.plan_cache = plan_cache
        self._lookup = None

    # -- steps ---------------------------------------------------------------

    def reduce(self, graph: nx.Graph) -> ReductionResult:
        """Step 1: distill the graph."""
        ensure_graph(graph)
        return self.reducer.reduce(graph)

    def optimize_reduced(self, reduction: ReductionResult) -> list[OptimizationTrace]:
        """Step 2: COBYLA restarts on the distilled graph."""
        return self._optimize_traces(
            self._objective(reduction.reduced_graph),
            warm_start_graph=reduction.reduced_graph,
        )

    def _optimize_traces(self, objective, warm_start_graph=None) -> list[OptimizationTrace]:
        """COBYLA restarts against ``objective``; one warm start when enabled.

        Shared by the graph and problem paths so restart bookkeeping (and
        the RNG draw order behind same-seed reproducibility) lives in one
        place.  ``warm_start_graph`` feeds the degree-indexed lookup; pass
        ``None`` to force all-random restarts.
        """
        traces: list[OptimizationTrace] = []
        random_restarts = self.restarts
        if self.warm_start and warm_start_graph is not None:
            initial = self._warm_start_vector(warm_start_graph)
            traces.append(
                cobyla_optimize(
                    objective, self.p, initial=initial,
                    maxiter=self.maxiter, seed=self._rng,
                )
            )
            random_restarts -= 1
        if random_restarts > 0:
            traces.extend(
                multi_restart_optimize(
                    objective, self.p, restarts=random_restarts,
                    maxiter=self.maxiter, seed=self._rng,
                )
            )
        return traces

    def _warm_start_vector(self, graph: nx.Graph) -> np.ndarray:
        from repro.transfer.lookup import ParameterLookup

        if self._lookup is None:
            self._lookup = ParameterLookup(seed=self._rng)
        return self._lookup.warm_start_vector(graph, self.p)

    def finetune(
        self,
        graph: nx.Graph,
        gammas: np.ndarray,
        betas: np.ndarray,
    ) -> OptimizationTrace | None:
        """Step 4: short optimization on the original graph, if enabled."""
        if self.finetune_maxiter == 0:
            return None
        objective = self._objective(relabel_to_range(graph))
        initial = np.concatenate([gammas, betas])
        return cobyla_optimize(
            objective,
            self.p,
            initial=initial,
            maxiter=self.finetune_maxiter,
            rhobeg=0.1,  # small steps: the transferred start is near-optimal
            seed=self._rng,
        )

    def run(
        self,
        graph: nx.Graph | None = None,
        *,
        problem=None,
        reduction: ReductionResult | ProblemReductionResult | None = None,
    ) -> RedQAOAResult:
        """The full pipeline of Fig. 4 on ``graph`` or on any diagonal ``problem``.

        Exactly one of ``graph`` (MaxCut, the paper's workload) and
        ``problem`` (a :class:`~repro.problems.DiagonalProblem`: MIS,
        vertex cover, partitioning, SK, QUBO, ...) must be given.

        ``reduction`` optionally supplies a precomputed (possibly shared)
        reduction of the *same* instance, skipping step 1.  Passing the
        result a same-seeded reducer would have produced leaves the run
        bit-identical, because reduction and optimization draw from
        separate RNG streams when the reducer is constructed with its own
        seed; this is how the batch scheduler shares one reduction across
        jobs that differ only in optimizer configuration.
        """
        if (graph is None) == (problem is None):
            raise ValueError("pass exactly one of graph= or problem=")
        if problem is not None:
            return self._run_problem(problem, reduction=reduction)
        ensure_graph(graph)
        if reduction is None:
            with span("reduce"):
                reduction = self.reduce(graph)
        with span("optimize"):
            traces = self.optimize_reduced(reduction)
        best_trace = max(traces, key=lambda t: t.best_value)
        gammas, betas = best_trace.best_parameters

        relabeled = relabel_to_range(graph)
        evaluate_ideal = maxcut_evaluator(relabeled, self.p, plan_cache=self.plan_cache)
        expectation = evaluate_ideal(gammas, betas)
        with span("finetune"):
            finetune_trace = self.finetune(relabeled, gammas, betas)
        if finetune_trace is not None and finetune_trace.num_evaluations:
            # Keep the transferred parameters if fine-tuning failed to help
            # under its (possibly noisy) objective.
            ft_gammas, ft_betas = finetune_trace.best_parameters
            ft_expectation = evaluate_ideal(ft_gammas, ft_betas)
            if ft_expectation >= expectation:
                gammas, betas = ft_gammas, ft_betas
                expectation = ft_expectation

        with span("readout"):
            cut_value, assignment = self._solve(graph, relabeled, gammas, betas)
        return RedQAOAResult(
            reduction=reduction,
            gammas=np.asarray(gammas, dtype=float),
            betas=np.asarray(betas, dtype=float),
            expectation=expectation,
            cut_value=cut_value,
            assignment=assignment,
            reduced_traces=traces,
            finetune_trace=finetune_trace,
        )

    def _run_problem(self, problem, reduction=None) -> RedQAOAResult:
        """Reduce -> optimize -> transfer -> solve on a diagonal problem.

        The same Fig. 4 flow, with the coupling graph standing in for the
        MaxCut graph: SA distills it (field-aware), COBYLA restarts run
        against the subproblem's expectation, the best parameters transfer
        to the full problem, and readout samples the full trial state.
        """
        from repro.problems.expectation import problem_evaluator

        if self.noise is not None:
            raise NotImplementedError(
                "noisy optimization is only wired up for MaxCut graphs; "
                "run problems with noise=None"
            )
        # Dispatch the full-problem engine first: this fails fast (before
        # any reduction or optimization budget is spent) when no exact
        # engine can evaluate the transfer target, and on the lightcone
        # path it compiles the plan once for every later evaluation.
        evaluate_full = problem_evaluator(problem, self.p, plan_cache=self.plan_cache)
        if reduction is None:
            with span("reduce"):
                reduction = self.reducer.reduce_problem(problem)
        sub = reduction.subproblem
        evaluate_sub = problem_evaluator(sub, self.p, plan_cache=self.plan_cache)

        with span("optimize"):
            traces = self._optimize_traces(
                evaluate_sub,
                warm_start_graph=sub.coupling_graph() if sub.num_couplings else None,
            )
        best_trace = max(traces, key=lambda t: t.best_value)
        gammas, betas = best_trace.best_parameters

        expectation = evaluate_full(gammas, betas)
        finetune_trace = None
        if self.finetune_maxiter > 0:
            with span("finetune"):
                finetune_trace = cobyla_optimize(
                    evaluate_full,
                    self.p,
                    initial=np.concatenate([gammas, betas]),
                    maxiter=self.finetune_maxiter,
                    rhobeg=0.1,
                    seed=self._rng,
                )
            if finetune_trace.num_evaluations:
                ft_gammas, ft_betas = finetune_trace.best_parameters
                ft_expectation = evaluate_full(ft_gammas, ft_betas)
                if ft_expectation >= expectation:
                    gammas, betas = ft_gammas, ft_betas
                    expectation = ft_expectation

        with span("readout"):
            cut_value, assignment = self._solve_problem(problem, gammas, betas)
        return RedQAOAResult(
            reduction=reduction,
            gammas=np.asarray(gammas, dtype=float),
            betas=np.asarray(betas, dtype=float),
            expectation=expectation,
            cut_value=cut_value,
            assignment=assignment,
            reduced_traces=traces,
            finetune_trace=finetune_trace,
        )

    def _solve_problem(
        self, problem, gammas: np.ndarray, betas: np.ndarray
    ) -> tuple[float, dict]:
        """Sample the problem's trial state; best observed objective value.

        Needs the dense state, so readout is skipped (NaN value, empty
        assignment) beyond the dense-qubit guard -- the expectation and
        transferred parameters remain valid there.
        """
        from repro.problems import MAX_DENSE_QUBITS

        if problem.num_qubits > MAX_DENSE_QUBITS:
            return float("nan"), {}
        probs = qaoa_probabilities(problem, list(gammas), list(betas))
        return self._sample_readout(
            problem.diagonal, probs, range(problem.num_qubits)
        )

    def _sample_readout(self, diagonal, probs, labels) -> tuple[float, dict]:
        """Draw shots from ``probs`` and return the best value seen plus the
        ``label -> bit`` assignment of that outcome (label order = bit order)."""
        shots = self.shots if self.shots is not None else 1024
        outcomes = self._rng.choice(probs.size, size=shots, p=probs / probs.sum())
        values = diagonal[outcomes]
        best_index = int(outcomes[int(np.argmax(values))])
        assignment = {
            label: (best_index >> position) & 1
            for position, label in enumerate(labels)
        }
        return float(values.max()), assignment

    # -- internals -------------------------------------------------------------

    def _objective(self, graph: nx.Graph):
        """Energy function (to maximize) on ``graph`` under configured noise.

        Ideal objectives dispatch the engine (and compile any lightcone
        plan) once via :func:`~repro.qaoa.expectation.maxcut_evaluator`
        instead of per evaluation -- bit-identical values, one engine
        setup per optimization loop.
        """
        if self.noise is None:
            return maxcut_evaluator(graph, self.p, plan_cache=self.plan_cache)
        return lambda gammas, betas: noisy_maxcut_expectation(
            graph,
            gammas,
            betas,
            self.noise,
            trajectories=self.trajectories,
            shots=self.shots,
            seed=self._rng,
        )

    def _solve(
        self, graph: nx.Graph, relabeled: nx.Graph, gammas: np.ndarray, betas: np.ndarray
    ) -> tuple[float, dict]:
        """Step 5: sample the final state and return the best observed cut.

        ``relabeled`` is the caller's already-computed 0..n-1 relabeling of
        ``graph``; the original is still needed for assignment labels.
        """
        hamiltonian = MaxCutHamiltonian(relabeled)
        if self.noise is None:
            probs = qaoa_probabilities(hamiltonian, list(gammas), list(betas))
        else:
            probs = noisy_qaoa_probabilities(
                hamiltonian, list(gammas), list(betas), self.noise,
                trajectories=self.trajectories, seed=self._rng,
            )
        try:
            ordered = sorted(graph.nodes())
        except TypeError:
            ordered = list(graph.nodes())
        return self._sample_readout(hamiltonian.diagonal, probs, ordered)
