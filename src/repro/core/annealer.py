"""Algorithm 1: simulated annealing for graph reduction.

Faithful implementation of the paper's pseudocode: start from a random
connected ``k``-node subgraph, repeatedly propose swapping one subgraph
node for an outside node, accept improvements always and regressions with
Metropolis probability ``exp(-(f' - f) / T)``, and cool until ``T_f``.
The objective is the AND difference against the original graph
(:mod:`repro.core.objective`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.core.cooling import AdaptiveCooling, ConstantCooling, CoolingSchedule
from repro.core.objective import and_difference_objective
from repro.utils.graphs import (
    average_node_strength,
    connected_random_subgraph,
    ensure_graph,
    neighbor_swap,
)
from repro.utils.rng import as_generator

__all__ = ["AnnealResult", "simulated_annealing"]


@dataclass
class AnnealResult:
    """Outcome of one annealing run.

    ``nodes`` is the selected node subset of the original graph; ``subgraph``
    is the induced subgraph (a copy); ``objective`` is its AND difference;
    ``history`` holds the best-so-far objective at each step for convergence
    inspection; ``steps`` is the number of temperature updates.
    """

    nodes: set
    subgraph: nx.Graph
    objective: float
    steps: int
    history: list[float] = field(default_factory=list)


def simulated_annealing(
    graph: nx.Graph,
    k: int,
    initial_temperature: float = 1.0,
    final_temperature: float = 1e-3,
    cooling: CoolingSchedule | str = "adaptive",
    seed: int | np.random.Generator | None = None,
    max_steps: int | None = None,
) -> AnnealResult:
    """Find a connected ``k``-node subgraph whose AND matches ``graph``'s.

    On weighted graphs the AND is strength-based (see
    :func:`~repro.utils.graphs.average_node_strength`), so the annealer
    preserves weighted connectivity; unit weights reproduce the paper's
    unweighted objective bit for bit.

    Parameters mirror Algorithm 1: ``initial_temperature`` (T0),
    ``final_temperature`` (Tf), and ``cooling`` -- either a
    :class:`~repro.core.cooling.CoolingSchedule` or one of the strings
    ``"adaptive"`` / ``"constant"`` (the paper's ``is_adaptive`` flag).
    ``max_steps`` is a safety bound on top of the temperature loop.

    Returns the best subgraph seen across the whole run (not merely the
    final state), which only improves on the pseudocode.
    """
    ensure_graph(graph)
    if not 1 <= k <= graph.number_of_nodes():
        raise ValueError(f"k must be in [1, {graph.number_of_nodes()}], got {k}")
    if initial_temperature <= final_temperature:
        raise ValueError(
            f"initial temperature {initial_temperature} must exceed final "
            f"temperature {final_temperature}"
        )
    if final_temperature <= 0:
        raise ValueError(f"final temperature must be positive, got {final_temperature}")
    schedule = _resolve_cooling(cooling)
    schedule.reset()
    rng = as_generator(seed)
    target_and = average_node_strength(graph)

    current = connected_random_subgraph(graph, k, rng)
    current_obj = and_difference_objective(graph, current, target_and)
    best = set(current)
    best_obj = current_obj
    history = [best_obj]

    temperature = initial_temperature
    steps = 0
    limit = max_steps if max_steps is not None else _default_step_limit(graph, schedule)
    while temperature > final_temperature and steps < limit:
        neighbor = neighbor_swap(graph, current, rng)
        neighbor_obj = and_difference_objective(graph, neighbor, target_and)
        accepted = False
        if neighbor_obj < current_obj:
            accepted = True
        else:
            delta = neighbor_obj - current_obj
            if rng.random() < math.exp(-delta / temperature):
                accepted = True
        if accepted:
            current, current_obj = neighbor, neighbor_obj
            if current_obj < best_obj:
                best, best_obj = set(current), current_obj
        history.append(best_obj)
        temperature = schedule.next_temperature(temperature, accepted)
        steps += 1
        if best_obj == 0.0:
            break  # exact AND match cannot be improved further

    return AnnealResult(
        nodes=best,
        subgraph=nx.Graph(graph.subgraph(best)),
        objective=best_obj,
        steps=steps,
        history=history,
    )


def _resolve_cooling(cooling: CoolingSchedule | str) -> CoolingSchedule:
    if isinstance(cooling, CoolingSchedule):
        return cooling
    if cooling == "adaptive":
        return AdaptiveCooling()
    if cooling == "constant":
        return ConstantCooling()
    raise ValueError(f"unknown cooling schedule {cooling!r}")


def _default_step_limit(graph: nx.Graph, schedule: CoolingSchedule) -> int:
    """A generous bound: enough steps for the slowest schedule to freeze."""
    base = 200 * max(1, graph.number_of_nodes())
    return min(base, 20_000)
