"""Algorithm 1: simulated annealing for graph reduction.

Faithful implementation of the paper's pseudocode: start from a random
connected ``k``-node subgraph, repeatedly propose swapping one subgraph
node for an outside node, accept improvements always and regressions with
Metropolis probability ``exp(-(f' - f) / T)``, and cool until ``T_f``.
The objective is the AND difference against the original graph
(:mod:`repro.core.objective`).

Two engines share one annealing driver, so their RNG streams, acceptance
decisions, and cooling updates are structurally identical:

- :func:`simulated_annealing` (the default) keeps **incremental state**: a
  flat CSR adjacency built once per call, the subgraph strength sum, the
  outside set, and per-node "edges into subgraph" counters are maintained
  under each swap, so one step costs ``O(deg(removed) + deg(added))`` plus
  one connectivity BFS over the CSR instead of ``O(n + k * deg)`` of
  networkx scans and subgraph copies.
- :func:`reference_simulated_annealing` retains the original per-call
  networkx recomputation (``neighbor_swap`` + induced-subgraph strength
  sums).  It is the bit-identity oracle for the equivalence test suite and
  the "before" baseline for the ``BENCH_*.json`` speedup measurements.

Same-seed runs of the two engines return bit-identical
:class:`AnnealResult` values (nodes, objective, steps, history): they draw
the same RNG sequence, and both compute objectives as correctly-rounded
strength sums -- the reference via ``math.fsum``, the incremental engine
via exact dyadic-integer arithmetic -- which agree on every subgraph
regardless of summation order.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_left, insort
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.core.cooling import AdaptiveCooling, ConstantCooling, CoolingSchedule
from repro.core.objective import and_difference_objective
from repro.obs.metrics import REGISTRY, STAGE_BUCKETS

_SA_RUNS = REGISTRY.counter("redqaoa_sa_runs_total", "simulated-annealing runs")
_SA_STEPS = REGISTRY.counter("redqaoa_sa_steps_total", "simulated-annealing steps")
_SA_SECONDS = REGISTRY.counter(
    "redqaoa_sa_seconds_total", "seconds spent inside the annealing loop"
)
_SA_RUN_DURATION = REGISTRY.histogram(
    "redqaoa_sa_run_seconds", "per-run annealing latency", buckets=STAGE_BUCKETS
)
from repro.utils.graphs import (
    average_node_strength,
    connected_random_subgraph,
    ensure_graph,
    neighbor_swap,
)
from repro.utils.rng import as_generator

__all__ = ["AnnealResult", "reference_simulated_annealing", "simulated_annealing"]

_MAX_SWAP_ATTEMPTS = 200  # mirrors utils.graphs.neighbor_swap


@dataclass
class AnnealResult:
    """Outcome of one annealing run.

    ``nodes`` is the selected node subset of the original graph; ``subgraph``
    is the induced subgraph (a copy); ``objective`` is its AND difference;
    ``history`` holds the best-so-far objective at each step for convergence
    inspection; ``steps`` is the number of temperature updates.
    """

    nodes: set
    subgraph: nx.Graph
    objective: float
    steps: int
    history: list[float] = field(default_factory=list)


def simulated_annealing(
    graph: nx.Graph,
    k: int,
    initial_temperature: float = 1.0,
    final_temperature: float = 1e-3,
    cooling: CoolingSchedule | str = "adaptive",
    seed: int | np.random.Generator | None = None,
    max_steps: int | None = None,
) -> AnnealResult:
    """Find a connected ``k``-node subgraph whose AND matches ``graph``'s.

    On weighted graphs the AND is strength-based (see
    :func:`~repro.utils.graphs.average_node_strength`), so the annealer
    preserves weighted connectivity; unit weights reproduce the paper's
    unweighted objective bit for bit.

    Parameters mirror Algorithm 1: ``initial_temperature`` (T0),
    ``final_temperature`` (Tf), and ``cooling`` -- either a
    :class:`~repro.core.cooling.CoolingSchedule` or one of the strings
    ``"adaptive"`` / ``"constant"`` (the paper's ``is_adaptive`` flag).
    ``max_steps`` is a safety bound on top of the temperature loop.

    Returns the best subgraph seen across the whole run (not merely the
    final state), which only improves on the pseudocode.  Uses the
    incremental-state engine; same-seed results are bit-identical to
    :func:`reference_simulated_annealing`.
    """
    return _anneal(
        graph, k, initial_temperature, final_temperature, cooling, seed,
        max_steps, _IncrementalState,
    )


def reference_simulated_annealing(
    graph: nx.Graph,
    k: int,
    initial_temperature: float = 1.0,
    final_temperature: float = 1e-3,
    cooling: CoolingSchedule | str = "adaptive",
    seed: int | np.random.Generator | None = None,
    max_steps: int | None = None,
) -> AnnealResult:
    """:func:`simulated_annealing` with per-call networkx recomputation.

    The retained pre-optimization implementation: every proposal runs
    :func:`~repro.utils.graphs.neighbor_swap` (full outside scan plus an
    induced-subgraph connectivity check) and re-sums the subgraph strength
    from scratch.  Kept as the equivalence oracle and benchmark baseline;
    prefer :func:`simulated_annealing` everywhere else.
    """
    return _anneal(
        graph, k, initial_temperature, final_temperature, cooling, seed,
        max_steps, _ReferenceState,
    )


def _anneal(graph, k, initial_temperature, final_temperature, cooling, seed, max_steps, state_factory):
    ensure_graph(graph)
    if not 1 <= k <= graph.number_of_nodes():
        raise ValueError(f"k must be in [1, {graph.number_of_nodes()}], got {k}")
    if initial_temperature <= final_temperature:
        raise ValueError(
            f"initial temperature {initial_temperature} must exceed final "
            f"temperature {final_temperature}"
        )
    if final_temperature <= 0:
        raise ValueError(f"final temperature must be positive, got {final_temperature}")
    schedule = _resolve_cooling(cooling)
    schedule.reset()
    rng = as_generator(seed)
    target_and = average_node_strength(graph)
    t0 = time.perf_counter()

    start = connected_random_subgraph(graph, k, rng)
    state = state_factory(graph, start, target_and)
    current_obj = state.objective
    best = set(start)
    best_obj = current_obj
    history = [best_obj]

    temperature = initial_temperature
    steps = 0
    limit = max_steps if max_steps is not None else _default_step_limit(graph, schedule)
    while temperature > final_temperature and steps < limit:
        neighbor_obj = state.propose(rng)
        accepted = False
        if neighbor_obj < current_obj:
            accepted = True
        else:
            delta = neighbor_obj - current_obj
            if rng.random() < math.exp(-delta / temperature):
                accepted = True
        if accepted:
            state.commit()
            current_obj = neighbor_obj
            if current_obj < best_obj:
                best, best_obj = state.snapshot(), current_obj
        history.append(best_obj)
        temperature = schedule.next_temperature(temperature, accepted)
        steps += 1
        if best_obj == 0.0:
            break  # exact AND match cannot be improved further

    _SA_RUNS.inc()
    _SA_STEPS.inc(steps)
    run_seconds = time.perf_counter() - t0
    _SA_SECONDS.inc(run_seconds)
    _SA_RUN_DURATION.observe(run_seconds)
    return AnnealResult(
        nodes=best,
        subgraph=nx.Graph(graph.subgraph(best)),
        objective=best_obj,
        steps=steps,
        history=history,
    )


class _ReferenceState:
    """Per-call networkx recomputation (the original hot path)."""

    def __init__(self, graph: nx.Graph, start: set, target_and: float) -> None:
        self._graph = graph
        self._target = target_and
        self._current = set(start)
        self._pending: set | None = None
        self.objective = and_difference_objective(graph, self._current, target_and)

    def propose(self, rng: np.random.Generator) -> float:
        self._pending = neighbor_swap(self._graph, self._current, rng)
        return and_difference_objective(self._graph, self._pending, self._target)

    def commit(self) -> None:
        if self._pending is not None:
            self._current = self._pending

    def snapshot(self) -> set:
        return set(self._current)


class _IncrementalState:
    """CSR adjacency + incrementally maintained swap/objective state.

    Draws the exact RNG sequence of :func:`~repro.utils.graphs.neighbor_swap`
    (one ``integers`` call for the removed node per attempt, one for the
    added node whenever the candidate list is non-empty) and computes the
    exact objective the reference computes, but in
    ``O(deg(removed) + deg(added))`` per proposal plus one CSR BFS for the
    connectivity check -- no networkx scans, no subgraph copies.

    Objective exactness: every ``|weight|`` is a dyadic rational, so the
    subgraph strength sum is maintained as an exact integer numerator over
    a common power-of-two denominator.  ``numerator / denominator`` is
    correctly rounded, hence bit-equal to the reference's ``math.fsum``.
    """

    def __init__(self, graph: nx.Graph, start: set, target_and: float) -> None:
        try:
            labels = sorted(graph.nodes())
        except TypeError:
            labels = list(graph.nodes())
        index = {node: i for i, node in enumerate(labels)}
        n = len(labels)
        self._labels = labels
        self._target = target_and

        # CSR adjacency with exact integer |weight| scaling.  Neighbor rows
        # are sorted by index so candidate scans match sorted-label order.
        indptr = [0] * (n + 1)
        nbr: list[int] = []
        w_int: list[int] = []
        self_int = [0] * n
        ratio_cache: dict[float, tuple[int, int]] = {}
        denom = 1
        rows: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        for node, adjacency in graph.adjacency():
            i = index[node]
            for other, data in adjacency.items():
                weight = abs(float(data.get("weight", 1.0)))
                if not math.isfinite(weight):
                    raise ValueError(f"edge weight on ({node}, {other}) is not finite")
                ratio = ratio_cache.get(weight)
                if ratio is None:
                    ratio = weight.as_integer_ratio()
                    ratio_cache[weight] = ratio
                    if ratio[1] > denom:
                        denom = ratio[1]
                rows[i].append((index[other], weight))
        for i in range(n):
            rows[i].sort()
            for j, weight in rows[i]:
                num, den = ratio_cache[weight]
                scaled = num * (denom // den)
                if j == i:
                    self_int[i] = scaled
                else:
                    nbr.append(j)
                    w_int.append(scaled)
            indptr[i + 1] = len(nbr)
        self._indptr = indptr
        self._nbr = nbr
        self._w_int = w_int
        self._self_int = self_int
        self._denom = denom

        members = sorted(index[node] for node in start)
        self._k = len(members)
        in_sub = bytearray(n)
        for i in members:
            in_sub[i] = 1
        self._in_sub = in_sub
        cnt = [0] * n
        for i in range(n):
            cnt[i] = sum(in_sub[u] for u in nbr[indptr[i]:indptr[i + 1]])
        self._cnt = cnt
        self._inside = members
        self._outside = [i for i in range(n) if not in_sub[i]]
        self._active = [i for i in self._outside if cnt[i] > 0]
        self._seen = [0] * n
        self._bfs_id = 0

        s2 = 0
        for i in members:
            for pos in range(indptr[i], indptr[i + 1]):
                if in_sub[nbr[pos]]:
                    s2 += w_int[pos]
        self._s_int = (s2 >> 1) + sum(self_int[i] for i in members)
        self.objective = self._objective_of(self._s_int)
        self._pending: tuple[int, int, int] | None = None

    def _objective_of(self, s_int: int) -> float:
        # ``s_int / denom`` is the correctly rounded strength sum, matching
        # the reference's ``math.fsum``; the remaining float ops mirror
        # ``and_difference_objective`` exactly.
        return abs(2.0 * (s_int / self._denom) / self._k - self._target)

    # -- proposal ----------------------------------------------------------

    def propose(self, rng: np.random.Generator) -> float:
        self._pending = None
        inside = self._inside
        if not self._outside:
            return self.objective
        indptr, nbr, w_int = self._indptr, self._nbr, self._w_int
        in_sub, cnt, active = self._in_sub, self._cnt, self._active
        for _ in range(_MAX_SWAP_ATTEMPTS):
            removed = inside[int(rng.integers(len(inside)))]
            # Outside nodes whose only edge into the subgraph is `removed`:
            # they drop out of the candidate list for this proposal.
            disq = [
                u
                for u in nbr[indptr[removed]:indptr[removed + 1]]
                if not in_sub[u] and cnt[u] == 1
            ]
            num_candidates = len(active) - len(disq)
            if num_candidates <= 0:
                continue
            pick = int(rng.integers(num_candidates))
            if disq:
                for pos in sorted(bisect_left(active, u) for u in disq):
                    if pos <= pick:
                        pick += 1
                    else:
                        break
            added = active[pick]
            if self._k == 1 or self._connected_after(removed, added):
                out_w = self._self_int[removed]
                for pos in range(indptr[removed], indptr[removed + 1]):
                    if in_sub[nbr[pos]]:
                        out_w += w_int[pos]
                in_w = self._self_int[added]
                for pos in range(indptr[added], indptr[added + 1]):
                    u = nbr[pos]
                    if in_sub[u] and u != removed:
                        in_w += w_int[pos]
                s_new = self._s_int - out_w + in_w
                self._pending = (removed, added, s_new)
                return self._objective_of(s_new)
        return self.objective

    def _connected_after(self, removed: int, added: int) -> bool:
        """BFS over the CSR restricted to ``(subgraph - removed) + added``."""
        indptr, nbr, in_sub = self._indptr, self._nbr, self._in_sub
        seen = self._seen
        self._bfs_id += 1
        mark = self._bfs_id
        stack = [added]
        seen[added] = mark
        visited = 1
        while stack:
            v = stack.pop()
            for u in nbr[indptr[v]:indptr[v + 1]]:
                if seen[u] != mark and u != removed and (in_sub[u] or u == added):
                    seen[u] = mark
                    stack.append(u)
                    visited += 1
        return visited == self._k

    # -- commit / snapshot -------------------------------------------------

    def commit(self) -> None:
        if self._pending is None:
            return
        removed, added, s_new = self._pending
        self._s_int = s_new
        indptr, nbr = self._indptr, self._nbr
        cnt, in_sub = self._cnt, self._in_sub
        for u in nbr[indptr[removed]:indptr[removed + 1]]:
            cnt[u] -= 1
        for u in nbr[indptr[added]:indptr[added + 1]]:
            cnt[u] += 1
        in_sub[removed] = 0
        in_sub[added] = 1
        inside, outside, active = self._inside, self._outside, self._active
        del inside[bisect_left(inside, removed)]
        insort(inside, added)
        del outside[bisect_left(outside, added)]
        insort(outside, removed)
        del active[bisect_left(active, added)]
        touched = {removed}
        touched.update(nbr[indptr[removed]:indptr[removed + 1]])
        touched.update(nbr[indptr[added]:indptr[added + 1]])
        for v in touched:
            if in_sub[v]:
                continue
            pos = bisect_left(active, v)
            present = pos < len(active) and active[pos] == v
            wanted = cnt[v] > 0
            if wanted and not present:
                active.insert(pos, v)
            elif present and not wanted:
                del active[pos]

    def snapshot(self) -> set:
        labels = self._labels
        return {labels[i] for i in self._inside}


def _resolve_cooling(cooling: CoolingSchedule | str) -> CoolingSchedule:
    if isinstance(cooling, CoolingSchedule):
        return cooling
    if cooling == "adaptive":
        return AdaptiveCooling()
    if cooling == "constant":
        return ConstantCooling()
    raise ValueError(f"unknown cooling schedule {cooling!r}")


def _default_step_limit(graph: nx.Graph, schedule: CoolingSchedule) -> int:
    """A generous bound: enough steps for the slowest schedule to freeze."""
    base = 200 * max(1, graph.number_of_nodes())
    return min(base, 20_000)
