"""Cooling schedules for the simulated-annealing reducer.

Algorithm 1 supports two schedules (paper Sec. 4.4):

- **constant**: ``T <- alpha * T`` with a fixed factor;
- **adaptive**: the factor itself is a function of the current state --
  cooling slows while moves are being rejected (to keep exploring) and
  accelerates while moves are accepted (to exploit).  The paper found the
  adaptive schedule both better and cheaper (Sec. 4.5), and Red-QAOA uses
  it by default.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AdaptiveCooling", "ConstantCooling", "CoolingSchedule"]


class CoolingSchedule:
    """Interface: map (temperature, recent acceptance) -> new temperature."""

    def next_temperature(self, temperature: float, accepted: bool) -> float:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear internal state before a fresh annealing run."""


@dataclass
class ConstantCooling(CoolingSchedule):
    """Geometric cooling ``T <- alpha * T`` with constant ``alpha``."""

    alpha: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")

    def next_temperature(self, temperature: float, accepted: bool) -> float:
        return self.alpha * temperature


@dataclass
class AdaptiveCooling(CoolingSchedule):
    """Acceptance-driven cooling.

    Tracks a window of recent accept/reject outcomes.  When the acceptance
    rate is high the schedule cools aggressively (``fast_alpha``); when
    moves are mostly rejected it cools gently (``slow_alpha``), giving the
    search more time to escape before freezing.  This is the
    ``alpha(T) * T`` update of Algorithm 1 line 18.
    """

    slow_alpha: float = 0.99
    fast_alpha: float = 0.90
    window: int = 20

    def __post_init__(self) -> None:
        for name in ("slow_alpha", "fast_alpha"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise ValueError(f"{name} must be in (0, 1), got {value}")
        if self.fast_alpha > self.slow_alpha:
            raise ValueError("fast_alpha must cool at least as fast as slow_alpha")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        self._history: list[bool] = []

    def reset(self) -> None:
        self._history = []

    def next_temperature(self, temperature: float, accepted: bool) -> float:
        self._history.append(accepted)
        if len(self._history) > self.window:
            self._history.pop(0)
        acceptance_rate = sum(self._history) / len(self._history)
        alpha = self.slow_alpha + (self.fast_alpha - self.slow_alpha) * acceptance_rate
        return alpha * temperature
