"""Cross-instance reduction reuse (the paper's Sec. 6.1 opportunity).

The paper observes that the ideal landscapes of its 10-node and 11-node
test graphs nearly coincide -- so the distilled graph found for one could
have served the other, but Red-QAOA's per-instance subgraph search rejected
it.  :class:`ReductionCache` implements exactly that reuse: distilled
graphs are banked by their Average Node Degree, and a new instance first
checks the bank for a distilled graph whose AND clears the acceptance
ratio.  On a stream of similar instances (the common case in applications:
many MaxCut problems from one domain) this skips the annealing search
entirely for most graphs.

A cache *hit* returns a graph that is NOT a subgraph of the new instance --
that is fine for the parameter-optimization phase (only the landscape must
match, Sec. 3.2) and exactly mirrors how the paper argues cross-instance
transfer; solution finding still runs on the original graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.core.reduction import GraphReducer, ReductionResult
from repro.utils.graphs import average_node_strength, ensure_graph, is_weighted

__all__ = ["CachedReduction", "ReductionCache"]


@dataclass(frozen=True)
class CachedReduction:
    """One banked distilled graph.

    ``and_value`` is the strength-based (weighted) AND of the banked graph;
    ``weighted`` records whether it carries non-unit edge weights, so
    weighted queries never reuse weight-blind reductions and vice versa.
    """

    graph: nx.Graph
    and_value: float
    source_nodes: int
    weighted: bool = False


@dataclass
class ReductionCache:
    """AND-indexed bank of distilled graphs with a reducer fallback.

    Parameters
    ----------
    reducer:
        Used on cache misses; its ``and_ratio_threshold`` also defines what
        counts as a hit (the banked graph's AND over the query graph's AND,
        symmetrized, must clear the threshold).
    max_entries:
        Bank capacity; oldest entries are evicted first.
    """

    reducer: GraphReducer = field(default_factory=GraphReducer)
    max_entries: int = 64
    _entries: list[CachedReduction] = field(default_factory=list)
    hits: int = 0
    misses: int = 0

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {self.max_entries}")

    def lookup(self, graph: nx.Graph) -> CachedReduction | None:
        """Best banked distilled graph acceptable for ``graph``, or None.

        Acceptable means the strength-based AND ratio clears the reducer's
        threshold, the banked graph is strictly smaller than ``graph``, and
        both sides agree on weightedness (a weighted instance's landscape
        depends on its couplings, which a unit-weight banked graph cannot
        represent).  Among acceptable entries the one with the closest AND
        wins.
        """
        ensure_graph(graph)
        target = average_node_strength(graph)
        if target == 0.0:
            return None
        query_weighted = is_weighted(graph)
        best: CachedReduction | None = None
        best_gap = np.inf
        for entry in self._entries:
            if entry.graph.number_of_nodes() >= graph.number_of_nodes():
                continue
            if entry.weighted != query_weighted:
                continue
            ratio = entry.and_value / target
            ratio = ratio if ratio <= 1.0 else 1.0 / ratio
            if ratio < self.reducer.and_ratio_threshold:
                continue
            gap = abs(entry.and_value - target)
            if gap < best_gap:
                best, best_gap = entry, gap
        return best

    def reduce(self, graph: nx.Graph) -> tuple[nx.Graph, bool]:
        """Distilled graph for ``graph`` plus whether it came from the bank.

        Misses run the full :class:`GraphReducer` and bank the result.
        """
        ensure_graph(graph)
        cached = self.lookup(graph)
        if cached is not None:
            self.hits += 1
            return nx.Graph(cached.graph), True
        self.misses += 1
        result = self.reducer.reduce(graph)
        self._bank(result)
        return result.reduced_graph, False

    @property
    def size(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _bank(self, result: ReductionResult) -> None:
        entry = CachedReduction(
            graph=nx.Graph(result.reduced_graph),
            and_value=average_node_strength(result.reduced_graph),
            source_nodes=result.original_graph.number_of_nodes(),
            weighted=is_weighted(result.reduced_graph),
        )
        self._entries.append(entry)
        while len(self._entries) > self.max_entries:
            self._entries.pop(0)
