"""Cross-instance reduction reuse (the paper's Sec. 6.1 opportunity).

The paper observes that the ideal landscapes of its 10-node and 11-node
test graphs nearly coincide -- so the distilled graph found for one could
have served the other, but Red-QAOA's per-instance subgraph search rejected
it.  :class:`ReductionCache` implements exactly that reuse: distilled
graphs are banked by their Average Node Degree, and a new instance first
checks the bank for a distilled graph whose AND clears the acceptance
ratio.  On a stream of similar instances (the common case in applications:
many MaxCut problems from one domain) this skips the annealing search
entirely for most graphs.

A cache *hit* returns a graph that is NOT a subgraph of the new instance --
that is fine for the parameter-optimization phase (only the landscape must
match, Sec. 3.2) and exactly mirrors how the paper argues cross-instance
transfer; solution finding still runs on the original graph.

Lookups are indexed, not scanned: entries live in ``(weighted, AND
bucket)`` buckets of width ``-ln(threshold)`` in log-AND space, so the
acceptance band ``AND_entry / AND_query in [t, 1/t]`` maps onto the query's
bucket plus its two neighbors and a lookup touches only candidate entries.
Hits refresh an entry's recency and eviction is least-recently-used, so a
hot banked reduction serving a stream of queries is never pushed out by
one-off misses the way FIFO eviction pushed it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx

from repro.core.reduction import GraphReducer, ReductionResult
from repro.obs.metrics import REGISTRY
from repro.utils.graphs import average_node_strength, ensure_graph, is_weighted

__all__ = ["CachedReduction", "ReductionCache"]

_BANK_HITS = REGISTRY.counter(
    "redqaoa_reduction_cache_hits_total",
    "reduction-bank lookups served by a banked distilled graph",
)
_BANK_MISSES = REGISTRY.counter(
    "redqaoa_reduction_cache_misses_total",
    "reduction-bank lookups that found no acceptable entry",
)


@dataclass(frozen=True)
class CachedReduction:
    """One banked distilled graph.

    ``and_value`` is the strength-based (weighted) AND of the banked graph;
    ``weighted`` records whether it carries non-unit edge weights, so
    weighted queries never reuse weight-blind reductions and vice versa.
    """

    graph: nx.Graph
    and_value: float
    source_nodes: int
    weighted: bool = False


class ReductionCache:
    """AND-indexed bank of distilled graphs with a reducer fallback.

    Parameters
    ----------
    reducer:
        Used on cache misses; its ``and_ratio_threshold`` also defines what
        counts as a hit (the banked graph's AND over the query graph's AND,
        symmetrized, must clear the threshold).
    max_entries:
        Bank capacity; the least-recently-*used* entry is evicted first
        (a lookup hit counts as use).
    """

    def __init__(
        self,
        reducer: GraphReducer | None = None,
        max_entries: int = 64,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.reducer = reducer if reducer is not None else GraphReducer()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        # Insertion-id -> entry, kept in least-recently-used order (first =
        # coldest); a plain dict preserves insertion order and re-inserting
        # a popped id moves it to the hot end.
        self._by_id: dict[int, CachedReduction] = {}
        # (weighted, log-AND bucket) -> ids, the lookup index.
        self._buckets: dict[tuple[bool, float], list[int]] = {}
        self._next_id = 0
        # Acceptance band in log-AND space; 0 means only exact-AND matches
        # qualify (threshold 1.0), handled by bucketing on the AND itself.
        self._indexed_threshold = self.reducer.and_ratio_threshold
        self._band = -math.log(self._indexed_threshold)

    def _ensure_index(self) -> None:
        """Re-bucket the bank if the reducer's threshold changed.

        ``reducer`` is a public attribute; swapping or retuning it must not
        desynchronize the index (bucket width == acceptance band) from the
        live acceptance test, so the index is rebuilt lazily on mismatch.
        """
        threshold = self.reducer.and_ratio_threshold
        if threshold == self._indexed_threshold:
            return
        self._indexed_threshold = threshold
        self._band = -math.log(threshold)
        self._buckets = {}
        for entry_id, entry in self._by_id.items():
            self._buckets.setdefault(
                (entry.weighted, self._bucket(entry.and_value)), []
            ).append(entry_id)

    def _bucket(self, and_value: float) -> float:
        if self._band > 0.0:
            return math.floor(math.log(and_value) / self._band)
        return and_value

    def _candidate_ids(self, weighted: bool, target: float) -> list[int]:
        """Ids whose AND could clear the band for ``target``, sorted by age.

        The band ``|ln(AND) - ln(target)| <= band`` spans at most the
        target's bucket and its two neighbors (bucket width == band).
        """
        center = self._bucket(target)
        offsets = (-1, 0, 1) if self._band > 0.0 else (0,)
        ids: list[int] = []
        for offset in offsets:
            ids.extend(self._buckets.get((weighted, center + offset), ()))
        return sorted(ids)

    def lookup(self, graph: nx.Graph) -> CachedReduction | None:
        """Best banked distilled graph acceptable for ``graph``, or None.

        Acceptable means the strength-based AND ratio clears the reducer's
        threshold, the banked graph is strictly smaller than ``graph``, and
        both sides agree on weightedness (a weighted instance's landscape
        depends on its couplings, which a unit-weight banked graph cannot
        represent).  Among acceptable entries the one with the closest AND
        wins (oldest first on exact ties); the winner is touched, i.e.
        moved to the most-recently-used end of the eviction order.
        """
        ensure_graph(graph)
        self._ensure_index()
        target = average_node_strength(graph)
        if target == 0.0:
            return None
        query_weighted = is_weighted(graph)
        best: CachedReduction | None = None
        best_id = -1
        best_gap = math.inf
        for entry_id in self._candidate_ids(query_weighted, target):
            entry = self._by_id[entry_id]
            if entry.graph.number_of_nodes() >= graph.number_of_nodes():
                continue
            ratio = entry.and_value / target
            ratio = ratio if ratio <= 1.0 else 1.0 / ratio
            if ratio < self.reducer.and_ratio_threshold:
                continue
            gap = abs(entry.and_value - target)
            if gap < best_gap:
                best, best_id, best_gap = entry, entry_id, gap
        if best is not None:
            self._by_id[best_id] = self._by_id.pop(best_id)  # LRU touch
            _BANK_HITS.inc()
        else:
            _BANK_MISSES.inc()
        return best

    def reduce(self, graph: nx.Graph) -> tuple[nx.Graph, bool]:
        """Distilled graph for ``graph`` plus whether it came from the bank.

        Misses run the full :class:`GraphReducer` and bank the result.
        """
        ensure_graph(graph)
        cached = self.lookup(graph)
        if cached is not None:
            self.hits += 1
            return nx.Graph(cached.graph), True
        self.misses += 1
        result = self.reducer.reduce(graph)
        self.bank(result)
        return result.reduced_graph, False

    @property
    def size(self) -> int:
        return len(self._by_id)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def _entries(self) -> list[CachedReduction]:
        """Banked entries in eviction order (least recently used first)."""
        return list(self._by_id.values())

    def bank(self, result: ReductionResult) -> None:
        """Insert a finished reduction into the bank (most recently used).

        Public so batch schedulers can populate the bank with reductions
        they computed through their own seeded reducers (the cache's
        fallback reducer has a single RNG stream, which per-job seeding
        must bypass).
        """
        self._ensure_index()
        and_value = average_node_strength(result.reduced_graph)
        if and_value <= 0.0:
            return  # an edgeless distilled graph can never serve a query
        entry = CachedReduction(
            graph=nx.Graph(result.reduced_graph),
            and_value=and_value,
            source_nodes=result.original_graph.number_of_nodes(),
            weighted=is_weighted(result.reduced_graph),
        )
        entry_id = self._next_id
        self._next_id += 1
        self._by_id[entry_id] = entry
        self._buckets.setdefault(
            (entry.weighted, self._bucket(entry.and_value)), []
        ).append(entry_id)
        while len(self._by_id) > self.max_entries:
            self._evict()

    def _evict(self) -> None:
        """Drop the least-recently-used entry and unindex it."""
        cold_id = next(iter(self._by_id))
        entry = self._by_id.pop(cold_id)
        key = (entry.weighted, self._bucket(entry.and_value))
        ids = self._buckets[key]
        ids.remove(cold_id)
        if not ids:
            del self._buckets[key]
