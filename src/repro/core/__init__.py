"""The Red-QAOA core: SA-based graph reduction and the end-to-end pipeline.

Modules
-------
``objective``    -- the AND-difference objective the annealer minimizes
``cooling``      -- constant and adaptive cooling schedules
``annealer``     -- Algorithm 1: simulated annealing over connected subgraphs
``reduction``    -- :class:`GraphReducer`: binary search over subgraph sizes
                    until the AND-ratio constraint is met
``equivalence``  -- AND-ratio analysis relating degree similarity to
                    landscape MSE (paper Sec. 4.2-4.3)
``pipeline``     -- :class:`RedQAOA`: reduce, optimize on the distilled
                    graph, transfer, fine-tune on the original graph
"""

from repro.core.annealer import (
    AnnealResult,
    reference_simulated_annealing,
    simulated_annealing,
)
from repro.core.cache import CachedReduction, ReductionCache
from repro.core.cooling import AdaptiveCooling, ConstantCooling, CoolingSchedule
from repro.core.equivalence import and_ratio, subgraph_and_mse_study
from repro.core.objective import and_difference_objective
from repro.core.pipeline import RedQAOA, RedQAOAResult
from repro.core.reduction import GraphReducer, ProblemReductionResult, ReductionResult

__all__ = [
    "AdaptiveCooling",
    "AnnealResult",
    "CachedReduction",
    "ReductionCache",
    "ConstantCooling",
    "CoolingSchedule",
    "GraphReducer",
    "ProblemReductionResult",
    "RedQAOA",
    "RedQAOAResult",
    "ReductionResult",
    "and_difference_objective",
    "and_ratio",
    "reference_simulated_annealing",
    "simulated_annealing",
    "subgraph_and_mse_study",
]
