"""Graph reduction: binary search over subgraph sizes with AND checking.

Red-QAOA wraps the annealer in a size search (paper Secs. 4.4, 6.4.2): it
looks for the *smallest* subgraph whose AND ratio (subgraph AND over
original AND) still clears the acceptance threshold (0.7 by default, the
value Sec. 4.3 derives from the 0.02-MSE criterion).  Binary search over
``k`` gives the ``n log n`` preprocessing cost reported in Fig. 18.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.core.annealer import (
    AnnealResult,
    reference_simulated_annealing,
    simulated_annealing,
)
from repro.core.cooling import CoolingSchedule
from repro.utils.graphs import average_node_strength, ensure_graph, relabel_to_range
from repro.utils.rng import as_generator

__all__ = ["GraphReducer", "ProblemReductionResult", "ReductionResult"]

DEFAULT_AND_RATIO_THRESHOLD = 0.7


@dataclass
class ReductionResult:
    """Output of :meth:`GraphReducer.reduce`.

    ``nodes`` are original-graph labels; ``reduced_graph`` is the induced
    subgraph relabeled to ``0..k-1`` (ready for the quantum layer), and
    ``node_mapping`` maps original labels to the new ones.
    """

    original_graph: nx.Graph
    nodes: set
    reduced_graph: nx.Graph
    node_mapping: dict
    and_ratio: float
    anneal_result: AnnealResult

    @property
    def node_reduction(self) -> float:
        """Fraction of nodes removed, e.g. 0.28 for the paper's average."""
        return 1.0 - len(self.nodes) / self.original_graph.number_of_nodes()

    @property
    def edge_reduction(self) -> float:
        """Fraction of edges removed."""
        m = self.original_graph.number_of_edges()
        if m == 0:
            return 0.0
        return 1.0 - self.reduced_graph.number_of_edges() / m


@dataclass
class ProblemReductionResult:
    """Output of :meth:`GraphReducer.reduce_problem`.

    ``nodes`` are original problem qubit indices (sorted); ``subproblem``
    is the problem restricted to them and relabeled to ``0..k-1``
    (``node_mapping`` maps original to new indices); ``graph_reduction``
    is the underlying coupling-graph reduction with its annealing record.
    """

    problem: object  # a repro.problems.DiagonalProblem (duck-typed)
    subproblem: object
    nodes: list
    node_mapping: dict
    graph_reduction: ReductionResult

    @property
    def and_ratio(self) -> float:
        return self.graph_reduction.and_ratio

    @property
    def node_reduction(self) -> float:
        return self.graph_reduction.node_reduction

    @property
    def edge_reduction(self) -> float:
        return self.graph_reduction.edge_reduction

    # Aliases so result consumers written for graph reductions (examples,
    # CLI reporting) can render either flavor.
    @property
    def reduced_graph(self) -> nx.Graph:
        return self.graph_reduction.reduced_graph


class GraphReducer:
    """Searches for the smallest acceptable distilled graph.

    Parameters
    ----------
    and_ratio_threshold:
        Minimum acceptable ``AND(G') / AND(G)``; 0.7 by default (Sec. 4.3).
        On weighted graphs both ANDs are strength-based (weighted degrees).
        The ratio is clipped at 1 from above symmetrically, i.e. a subgraph
        with *larger* AND than the original is scored by ``AND(G)/AND(G')``.
    min_nodes:
        Never reduce below this many nodes (QAOA needs at least one edge;
        default 3 keeps subgraphs non-trivial).
    min_keep_fraction:
        Lower bound on the kept-node fraction (default 0.6, i.e. at most
        40% node reduction).  The AND ratio of tree-like graphs stays above
        threshold for arbitrarily small subtrees, so the AND check alone
        would over-reduce sparse graphs; this cap keeps reductions in the
        regime where the 0.02-MSE relationship of Sec. 4.3 was derived.
    cooling / anneal_kwargs:
        Forwarded to :func:`~repro.core.annealer.simulated_annealing`.
    retries:
        Annealing restarts per candidate size before declaring the size
        infeasible.
    annealer:
        ``"incremental"`` (default) runs the CSR incremental-state engine;
        ``"reference"`` runs the retained per-call networkx implementation.
        Same-seed results are bit-identical either way; the knob exists so
        benchmarks can measure the speedup through the full reducer.
    """

    def __init__(
        self,
        and_ratio_threshold: float = DEFAULT_AND_RATIO_THRESHOLD,
        min_nodes: int = 3,
        min_keep_fraction: float = 0.6,
        cooling: CoolingSchedule | str = "adaptive",
        retries: int = 2,
        initial_temperature: float = 1.0,
        final_temperature: float = 1e-3,
        seed: int | np.random.Generator | None = None,
        annealer: str = "incremental",
    ) -> None:
        if not 0.0 < and_ratio_threshold <= 1.0:
            raise ValueError(
                f"and_ratio_threshold must be in (0, 1], got {and_ratio_threshold}"
            )
        if min_nodes < 2:
            raise ValueError(f"min_nodes must be >= 2, got {min_nodes}")
        if not 0.0 < min_keep_fraction <= 1.0:
            raise ValueError(
                f"min_keep_fraction must be in (0, 1], got {min_keep_fraction}"
            )
        if retries < 1:
            raise ValueError(f"retries must be >= 1, got {retries}")
        if annealer not in ("incremental", "reference"):
            raise ValueError(
                f"annealer must be 'incremental' or 'reference', got {annealer!r}"
            )
        self.annealer = annealer
        self.and_ratio_threshold = and_ratio_threshold
        self.min_nodes = min_nodes
        self.min_keep_fraction = min_keep_fraction
        self.cooling = cooling
        self.retries = retries
        self.initial_temperature = initial_temperature
        self.final_temperature = final_temperature
        self._rng = as_generator(seed)

    # -- public API ---------------------------------------------------------

    def reduce(self, graph: nx.Graph, target_size: int | None = None) -> ReductionResult:
        """Distill ``graph``; binary-search the size unless ``target_size`` given.

        With ``target_size`` the reducer runs the annealer at that exact
        size (used by the fixed-ratio comparisons of Figs. 8-9); otherwise
        it binary-searches for the smallest size meeting the AND threshold.
        """
        ensure_graph(graph)
        n = graph.number_of_nodes()
        if graph.number_of_edges() == 0:
            raise ValueError("cannot reduce a graph with no edges")
        if target_size is not None:
            if not self.min_nodes <= target_size <= n:
                raise ValueError(
                    f"target_size must be in [{self.min_nodes}, {n}], got {target_size}"
                )
            best = self._anneal_at_size(graph, target_size)
            return self._build_result(graph, best)

        lo = max(self.min_nodes, int(np.ceil(self.min_keep_fraction * n)))
        lo = min(lo, n)
        hi = n
        feasible: AnnealResult | None = None
        while lo <= hi:
            mid = (lo + hi) // 2
            candidate = self._anneal_at_size(graph, mid)
            if candidate is not None and self._acceptable(graph, candidate):
                feasible = candidate
                hi = mid - 1  # try smaller
            else:
                lo = mid + 1  # need a bigger subgraph
        if feasible is None:
            # The graph itself always satisfies the ratio; fall back to it.
            whole = AnnealResult(
                nodes=set(graph.nodes()),
                subgraph=nx.Graph(graph),
                objective=0.0,
                steps=0,
                history=[0.0],
            )
            feasible = whole
        return self._build_result(graph, feasible)

    def reduce_problem(
        self, problem, target_size: int | None = None
    ) -> ProblemReductionResult:
        """Distill a :class:`~repro.problems.DiagonalProblem`.

        The annealer runs on the problem's coupling graph with fields
        included as self-loops (``weight = 2 h_u``), so the node-strength
        objective sees linear terms: a strongly-biased qubit counts as
        strongly connected and is preferentially retained.  Both annealing
        engines handle self-loops with bit-identical results (the strength
        sum counts each loop's ``|weight|`` once; connectivity ignores
        loops).  The kept nodes become :meth:`DiagonalProblem.subproblem`.

        For a MaxCut-encoded problem the coupling graph is the original
        weighted graph (no fields), so this reduces exactly as
        :meth:`reduce` does on that graph.
        """
        graph = problem.coupling_graph(include_fields=True)
        reduction = self.reduce(graph, target_size=target_size)
        nodes = sorted(reduction.nodes)
        return ProblemReductionResult(
            problem=problem,
            subproblem=problem.subproblem(nodes),
            nodes=nodes,
            node_mapping={node: index for index, node in enumerate(nodes)},
            graph_reduction=reduction,
        )

    # -- internals ----------------------------------------------------------

    def _anneal_at_size(self, graph: nx.Graph, k: int) -> AnnealResult | None:
        """Best annealing outcome over ``retries`` runs, or None if impossible."""
        anneal = (
            simulated_annealing
            if self.annealer == "incremental"
            else reference_simulated_annealing
        )
        best: AnnealResult | None = None
        for _ in range(self.retries):
            try:
                result = anneal(
                    graph,
                    k,
                    initial_temperature=self.initial_temperature,
                    final_temperature=self.final_temperature,
                    cooling=self.cooling,
                    seed=self._rng,
                )
            except ValueError:
                return None  # no connected component of that size
            if best is None or result.objective < best.objective:
                best = result
            if best.objective == 0.0:
                break
        return best

    def _acceptable(self, graph: nx.Graph, result: AnnealResult) -> bool:
        return self._and_ratio(graph, result) >= self.and_ratio_threshold

    @staticmethod
    def _and_ratio(graph: nx.Graph, result: AnnealResult) -> float:
        """Weighted (strength-based) AND ratio; equals the paper's unweighted
        ratio exactly when all weights are 1."""
        original = average_node_strength(graph)
        sub = average_node_strength(result.subgraph) if result.subgraph.number_of_nodes() else 0.0
        if original == 0.0 or sub == 0.0:
            return 0.0
        ratio = sub / original
        return ratio if ratio <= 1.0 else 1.0 / ratio

    def _build_result(self, graph: nx.Graph, result: AnnealResult) -> ReductionResult:
        try:
            ordered = sorted(result.nodes)
        except TypeError:
            ordered = list(result.nodes)
        mapping = {node: index for index, node in enumerate(ordered)}
        reduced = relabel_to_range(nx.Graph(graph.subgraph(result.nodes)))
        return ReductionResult(
            original_graph=graph,
            nodes=set(result.nodes),
            reduced_graph=reduced,
            node_mapping=mapping,
            and_ratio=self._and_ratio(graph, result),
            anneal_result=result,
        )
