"""The annealing objective: Average-Node-Degree (strength) matching.

Algorithm 1 measures subgraph quality as the difference between the
subgraph's AND and the original graph's AND (paper Sec. 4.4).  Lower is
better; zero means the subgraph preserves the average connectivity exactly,
which Sec. 4.2 argues implies matching QAOA subgraph structure and hence a
matching energy landscape.

The objective is the *weighted* generalization: edge weights contribute via
node strength (``2 * sum_e |w_e| / |V|``), so annealing on a weighted
instance preserves weighted connectivity.  Magnitudes are used because the
QAOA landscape depends on ``cos(gamma * w)`` (even in ``w``) and signed
sums cancel on spin glasses.  On unit-weight graphs the strength sum
equals the edge count exactly and the objective is bit-identical to the
paper's unweighted AND difference.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import networkx as nx

from repro.utils.graphs import average_node_strength, ensure_graph

__all__ = ["and_difference_objective", "subgraph_and"]


def subgraph_and(graph: nx.Graph, nodes: Iterable) -> float:
    """Weighted AND (strength) of the subgraph of ``graph`` induced by ``nodes``.

    Uses weight magnitudes, matching
    :func:`~repro.utils.graphs.average_node_strength`.  The strength sum is
    an ``math.fsum`` (correctly rounded, order-independent), which is what
    lets the incremental annealer reproduce this value bit-for-bit from
    exact integer updates.
    """
    nodes = set(nodes)
    if not nodes:
        raise ValueError("node set must be non-empty")
    sub = graph.subgraph(nodes)
    total = math.fsum(abs(data.get("weight", 1.0)) for _, _, data in sub.edges(data=True))
    return 2.0 * total / len(nodes)


def and_difference_objective(graph: nx.Graph, nodes: Iterable, target_and: float | None = None) -> float:
    """``|AND(subgraph) - AND(G)|`` -- the quantity Algorithm 1 minimizes.

    Both ANDs are weighted (strength-based).  ``target_and`` overrides the
    original graph's AND when the caller has already computed it (the
    annealer does, once, for speed).
    """
    ensure_graph(graph)
    if target_and is None:
        target_and = average_node_strength(graph)
    return abs(subgraph_and(graph, nodes) - target_and)
