"""The annealing objective: Average-Node-Degree matching.

Algorithm 1 measures subgraph quality as the difference between the
subgraph's AND and the original graph's AND (paper Sec. 4.4).  Lower is
better; zero means the subgraph preserves the average connectivity exactly,
which Sec. 4.2 argues implies matching QAOA subgraph structure and hence a
matching energy landscape.
"""

from __future__ import annotations

from collections.abc import Iterable

import networkx as nx

from repro.utils.graphs import average_node_degree, ensure_graph

__all__ = ["and_difference_objective", "subgraph_and"]


def subgraph_and(graph: nx.Graph, nodes: Iterable) -> float:
    """AND of the subgraph of ``graph`` induced by ``nodes``."""
    nodes = set(nodes)
    if not nodes:
        raise ValueError("node set must be non-empty")
    sub = graph.subgraph(nodes)
    return 2.0 * sub.number_of_edges() / len(nodes)


def and_difference_objective(graph: nx.Graph, nodes: Iterable, target_and: float | None = None) -> float:
    """``|AND(subgraph) - AND(G)|`` -- the quantity Algorithm 1 minimizes.

    ``target_and`` overrides the original graph's AND when the caller has
    already computed it (the annealer does, once, for speed).
    """
    ensure_graph(graph)
    if target_and is None:
        target_and = average_node_degree(graph)
    return abs(subgraph_and(graph, nodes) - target_and)
