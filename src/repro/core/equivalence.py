"""Equivalent-instance analysis: AND ratios vs. landscape MSE.

Tools behind Sec. 4.2-4.3 of the paper: the correlation study between the
Average-Node-Degree ratio of a subgraph and the MSE of its energy landscape
against the original graph (Fig. 5), and the polynomial fit that backs the
0.7 AND-ratio / 0.02 MSE operating point.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.qaoa.landscape import compute_landscape, landscape_mse
from repro.utils.graphs import (
    average_node_degree,
    ensure_graph,
    nonisomorphic_connected_subgraphs,
    relabel_to_range,
)

__all__ = ["AndMseSample", "and_ratio", "fit_polynomial", "subgraph_and_mse_study"]


def and_ratio(graph: nx.Graph, subgraph: nx.Graph) -> float:
    """``AND(subgraph) / AND(graph)``, the x-axis of Fig. 5."""
    ensure_graph(graph)
    ensure_graph(subgraph)
    original = average_node_degree(graph)
    if original == 0.0:
        raise ValueError("original graph has no edges")
    return average_node_degree(subgraph) / original


@dataclass(frozen=True)
class AndMseSample:
    """One (subgraph, original) comparison point."""

    num_nodes: int
    num_edges: int
    and_ratio: float
    mse: float


def subgraph_and_mse_study(
    graph: nx.Graph,
    min_size: int = 3,
    max_subgraphs_per_size: int | None = 40,
    width: int = 30,
) -> list[AndMseSample]:
    """Fig. 5 protocol for one graph: enumerate non-isomorphic connected
    subgraphs, compute each one's p=1 landscape on a ``width``-wide grid,
    and record (AND ratio, MSE vs. the original landscape).
    """
    ensure_graph(graph)
    graph = relabel_to_range(graph)
    reference = compute_landscape(graph, width=width).values
    samples: list[AndMseSample] = []
    for size in range(min_size, graph.number_of_nodes()):
        subgraphs = nonisomorphic_connected_subgraphs(
            graph, size, max_count=max_subgraphs_per_size
        )
        for sub in subgraphs:
            if sub.number_of_edges() == 0:
                continue
            candidate = relabel_to_range(sub)
            values = compute_landscape(candidate, width=width).values
            samples.append(
                AndMseSample(
                    num_nodes=candidate.number_of_nodes(),
                    num_edges=candidate.number_of_edges(),
                    and_ratio=and_ratio(graph, candidate),
                    mse=landscape_mse(reference, values),
                )
            )
    return samples


def fit_polynomial(samples: list[AndMseSample], degree: int = 6) -> np.ndarray:
    """Least-squares polynomial MSE(and_ratio), Fig. 5's best-fit curve.

    Returns the coefficient vector (highest power first, as
    ``numpy.polyval`` expects).
    """
    if len(samples) <= degree:
        raise ValueError(
            f"need more than {degree} samples to fit a degree-{degree} polynomial, "
            f"got {len(samples)}"
        )
    x = np.array([s.and_ratio for s in samples])
    y = np.array([s.mse for s in samples])
    return np.polyfit(x, y, degree)
