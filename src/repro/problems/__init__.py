"""General Ising/QUBO problem layer: Red-QAOA beyond MaxCut.

Every diagonal cost Hamiltonian -- quadratic couplings plus linear fields
plus a constant -- is a :class:`DiagonalProblem`, and the whole Red-QAOA
pipeline (SA reduction on the coupling graph, fast statevector / lightcone
expectations, reduce -> optimize -> transfer) operates on that abstraction.
Shipped encodings: weighted MaxCut, Max-Independent-Set and min-vertex-cover
(penalty encodings), number partitioning, SK spin glasses, and arbitrary
QUBO matrices; QUBO <-> Ising converters round-trip exactly.

>>> import networkx as nx
>>> from repro.problems import max_independent_set_problem, problem_expectation
>>> problem = max_independent_set_problem(nx.cycle_graph(5))
>>> problem.best_value()  # the independence number of C5
2.0
"""

from repro.problems.base import MAX_DENSE_QUBITS, DiagonalProblem, local_search_value
from repro.problems.encodings import (
    max_independent_set_problem,
    maxcut_problem,
    min_vertex_cover_problem,
    number_partitioning_problem,
    qubo_problem,
    sk_problem,
)
from repro.problems.expectation import (
    problem_evaluator,
    problem_expectation,
    problem_expectation_reference,
    problem_lightcone_plan,
)

__all__ = [
    "MAX_DENSE_QUBITS",
    "DiagonalProblem",
    "local_search_value",
    "max_independent_set_problem",
    "maxcut_problem",
    "min_vertex_cover_problem",
    "number_partitioning_problem",
    "problem_evaluator",
    "problem_expectation",
    "problem_expectation_reference",
    "problem_lightcone_plan",
    "qubo_problem",
    "sk_problem",
]
