"""The diagonal Ising/QUBO problem abstraction.

Every classic QAOA workload -- MaxCut, Max-Independent-Set, vertex cover,
number partitioning, SK spin glasses, arbitrary QUBOs -- is a *diagonal*
cost Hamiltonian: a polynomial of degree two in Pauli-Z operators,

``H = constant + sum_u h_u Z_u + sum_{u<v} J_uv Z_u Z_v``,

whose basis-state value is read off from spins ``s_u = 1 - 2 z_u`` (bit 0
maps to spin +1, matching the bit convention of
:func:`repro.qaoa.hamiltonian.cut_values`).  :class:`DiagonalProblem`
captures exactly that data -- quadratic couplings ``J``, linear fields
``h``, and a constant -- as the objective *to maximize*, and provides the
bridges the rest of the pipeline needs:

- :attr:`~DiagonalProblem.diagonal` -- the dense value vector over the
  computational basis, duck-type compatible with
  :class:`~repro.qaoa.hamiltonian.MaxCutHamiltonian` so every statevector
  engine in :mod:`repro.qaoa.fast_sim` works unchanged (the phase-table
  machinery picks up linear-Z terms automatically since they live in the
  diagonal);
- :meth:`~DiagonalProblem.coupling_graph` -- the interaction graph the SA
  reducer distills, with MaxCut-equivalent edge weights ``w = -2 J`` and
  (optionally) fields as self-loops so node strength is field-aware;
- :meth:`~DiagonalProblem.subproblem` -- the restriction to a node subset,
  which is what parameter transfer optimizes on;
- :meth:`~DiagonalProblem.from_qubo` / :meth:`~DiagonalProblem.to_qubo` --
  exact QUBO round-trip converters (``x_u = (1 - s_u) / 2``).

The ``w = -2 J`` weight convention makes a unit-weight MaxCut edge
(``J = -1/2``) carry coupling-graph weight exactly 1, so the problem layer
reduces and lightcone-evaluates weighted MaxCut bit-identically to the
pre-existing graph path.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

import networkx as nx
import numpy as np

from repro.utils.rng import as_generator

__all__ = ["MAX_DENSE_QUBITS", "DiagonalProblem", "local_search_value"]

# One dense-engine qubit cap shared by the diagonal builder, the
# expectation dispatcher, and the pipeline's readout guard.
MAX_DENSE_QUBITS = 26
_DENSE_BEST_LIMIT = 20


class DiagonalProblem:
    """A diagonal Ising cost function ``constant + sum h_u s_u + sum J_uv s_u s_v``.

    Parameters
    ----------
    num_qubits:
        Number of binary variables; qubits are labeled ``0..n-1``.
    couplings:
        Mapping ``(u, v) -> J_uv`` of quadratic coefficients.  Keys are
        canonicalized to ``u < v``; duplicate keys (either orientation) are
        summed; zero couplings are dropped.
    fields:
        Mapping ``u -> h_u`` of linear coefficients (zeros dropped), or a
        length-``n`` sequence.
    constant:
        Additive constant (identity coefficient).
    name:
        Short workload tag (``"maxcut"``, ``"mis"``, ...) used in reprs and
        CLI output.

    The stored value is the objective **to maximize**, matching the
    convention of every optimizer and expectation engine in the package.
    """

    def __init__(
        self,
        num_qubits: int,
        couplings: Mapping[tuple[int, int], float] | None = None,
        fields: Mapping[int, float] | Sequence[float] | None = None,
        constant: float = 0.0,
        name: str = "ising",
    ) -> None:
        if num_qubits < 1:
            raise ValueError(f"num_qubits must be >= 1, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        self.name = str(name)
        if not math.isfinite(constant):
            raise ValueError(f"constant must be finite, got {constant!r}")
        self.constant = float(constant)

        merged: dict[tuple[int, int], float] = {}
        for (u, v), value in (couplings or {}).items():
            u, v = int(u), int(v)
            if u == v:
                raise ValueError(f"coupling ({u}, {v}) is a self-pair; use fields")
            if not (0 <= u < num_qubits and 0 <= v < num_qubits):
                raise ValueError(f"coupling ({u}, {v}) out of range for n={num_qubits}")
            value = float(value)
            if not math.isfinite(value):
                raise ValueError(f"coupling ({u}, {v}) must be finite, got {value!r}")
            key = (u, v) if u < v else (v, u)
            merged[key] = merged.get(key, 0.0) + value
        self.couplings: dict[tuple[int, int], float] = {
            key: value for key, value in sorted(merged.items()) if value != 0.0
        }

        if fields is None:
            field_items: list[tuple[int, float]] = []
        elif isinstance(fields, Mapping):
            field_items = [(int(u), float(h)) for u, h in fields.items()]
        else:
            field_items = [(u, float(h)) for u, h in enumerate(fields)]
        cleaned: dict[int, float] = {}
        for u, h in field_items:
            if not 0 <= u < num_qubits:
                raise ValueError(f"field on qubit {u} out of range for n={num_qubits}")
            if not math.isfinite(h):
                raise ValueError(f"field on qubit {u} must be finite, got {h!r}")
            cleaned[u] = cleaned.get(u, 0.0) + h
        self.fields: dict[int, float] = {
            u: h for u, h in sorted(cleaned.items()) if h != 0.0
        }
        self._diagonal: np.ndarray | None = None

    # -- basic views ---------------------------------------------------------

    @property
    def num_couplings(self) -> int:
        return len(self.couplings)

    @property
    def is_field_free(self) -> bool:
        """Whether the problem has no linear-Z terms (pure coupling problem).

        Field-free problems are exactly the ones the lightcone engine can
        price: their phase layer is a weighted-MaxCut diagonal up to a
        global phase.
        """
        return not self.fields

    @property
    def edges(self) -> list[tuple[int, int]]:
        """Coupled qubit pairs, sorted -- the interaction topology."""
        return list(self.couplings)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DiagonalProblem(name={self.name!r}, n={self.num_qubits}, "
            f"couplings={self.num_couplings}, fields={len(self.fields)})"
        )

    # -- evaluation ----------------------------------------------------------

    def value(self, bits: Sequence[int]) -> float:
        """Objective value of one assignment (sequence of ``n`` bits)."""
        bits = np.asarray(bits)
        if bits.shape != (self.num_qubits,):
            raise ValueError(
                f"expected {self.num_qubits} bits, got shape {bits.shape}"
            )
        spins = 1.0 - 2.0 * (bits & 1)
        total = self.constant
        for u, h in self.fields.items():
            total += h * spins[u]
        for (u, v), j in self.couplings.items():
            total += j * spins[u] * spins[v]
        return float(total)

    @property
    def diagonal(self) -> np.ndarray:
        """Objective value of every basis state: array of shape ``(2**n,)``.

        Bit ``u`` of the basis index is variable ``u`` (the
        :func:`~repro.qaoa.hamiltonian.cut_values` convention), so this
        vector drops straight into the fast statevector engines as both the
        phase diagonal and the measured observable.  Built qubit by qubit
        (each new qubit mirrors the existing block and adds its field plus
        its couplings into the block), which costs ``O(sum_e 2**max(e))``
        instead of ``O(m 2**n)`` -- an order of magnitude less for the
        dense SK instances.  Cached; guarded at ``n <= 26``.
        """
        if self._diagonal is None:
            self._diagonal = self._build_diagonal()
        return self._diagonal

    def _build_diagonal(self) -> np.ndarray:
        n = self.num_qubits
        if n > MAX_DENSE_QUBITS:
            raise ValueError(
                f"refusing to materialize 2**{n} diagonal values; "
                "use the lightcone engine (field-free) or sampling instead"
            )
        by_high: dict[int, list[tuple[int, float]]] = {}
        for (u, v), j in self.couplings.items():
            by_high.setdefault(v, []).append((u, j))
        diag = np.full(1, self.constant)
        for k in range(n):
            term = np.full(1 << k, self.fields.get(k, 0.0))
            incoming = by_high.get(k)
            if incoming:
                z = np.arange(1 << k, dtype=np.uint64)
                for u, j in incoming:
                    spins = 1.0 - 2.0 * ((z >> np.uint64(u)) & np.uint64(1)).astype(float)
                    term += j * spins
            grown = np.empty(1 << (k + 1))
            grown[: 1 << k] = diag + term  # bit k = 0 -> spin +1
            grown[1 << k :] = diag - term
            diag = grown
        return diag

    def best_value(self, method: str = "auto", seed=None) -> float:
        """The true optimum (``method="dense"``) or a strong lower bound.

        ``"auto"`` uses the dense diagonal when it is already cached or the
        problem is small (``n <= 20``), and falls back to randomized 1-flip
        local search (:func:`local_search_value`) beyond that.
        """
        if method not in ("auto", "dense", "local"):
            raise ValueError(f"unknown method {method!r}")
        if method == "dense" or (
            method == "auto"
            and (self._diagonal is not None or self.num_qubits <= _DENSE_BEST_LIMIT)
        ):
            return float(self.diagonal.max())
        value, _ = local_search_value(self, seed=seed)
        return value

    def brute_force(self) -> tuple[float, np.ndarray]:
        """Exact ``(best value, best bit assignment)`` via the dense diagonal."""
        best = int(np.argmax(self.diagonal))
        bits = (best >> np.arange(self.num_qubits)) & 1
        return float(self.diagonal[best]), bits.astype(np.int64)

    # -- graphs and restrictions ---------------------------------------------

    def coupling_graph(self, include_fields: bool = False) -> nx.Graph:
        """The interaction graph with MaxCut-equivalent edge weights.

        Nodes are ``0..n-1``; each coupling ``J_uv`` becomes an edge of
        weight ``-2 J_uv`` (so a unit-weight MaxCut edge, ``J = -1/2``, maps
        back to weight exactly 1, and the graph doubles as the equivalent
        weighted-MaxCut instance for the lightcone engine).  With
        ``include_fields=True`` each nonzero field adds a self-loop of
        weight ``2 h_u``, making the SA reducer's node-strength objective
        field-aware -- both annealing engines handle self-loops exactly
        (strength counts ``|2 h_u|`` once per kept node; connectivity is
        unaffected).
        """
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_qubits))
        for (u, v), j in self.couplings.items():
            graph.add_edge(u, v, weight=-2.0 * j)
        if include_fields:
            for u, h in self.fields.items():
                graph.add_edge(u, u, weight=2.0 * h)
        return graph

    def subproblem(self, nodes: Sequence[int]) -> "DiagonalProblem":
        """The restriction to ``nodes``, relabeled to ``0..k-1`` in sorted order.

        Keeps couplings with both endpoints inside, fields on kept nodes,
        and the constant (a shift cannot change which parameters optimize
        the surrogate).  This is the instance Red-QAOA optimizes on before
        transferring parameters back.
        """
        kept = sorted(set(int(node) for node in nodes))
        if not kept:
            raise ValueError("node subset must be non-empty")
        if kept[0] < 0 or kept[-1] >= self.num_qubits:
            raise ValueError(f"nodes out of range for n={self.num_qubits}: {kept}")
        mapping = {node: index for index, node in enumerate(kept)}
        couplings = {
            (mapping[u], mapping[v]): j
            for (u, v), j in self.couplings.items()
            if u in mapping and v in mapping
        }
        fields = {mapping[u]: h for u, h in self.fields.items() if u in mapping}
        return DiagonalProblem(
            len(kept), couplings, fields, constant=self.constant, name=self.name
        )

    # -- QUBO round trip -----------------------------------------------------

    @classmethod
    def from_qubo(
        cls,
        matrix: np.ndarray,
        offset: float = 0.0,
        maximize: bool = True,
        name: str = "qubo",
    ) -> "DiagonalProblem":
        """Ising form of the QUBO objective ``x^T Q x + offset``, ``x in {0,1}^n``.

        ``matrix`` may be any square real matrix; ``Q_uv + Q_vu`` is the
        coefficient of ``x_u x_v`` and the diagonal holds the linear terms.
        With ``maximize=False`` the objective is negated first, so the
        stored problem is always a maximization.  Substituting
        ``x_u = (1 - s_u) / 2`` gives ``J_uv = (Q_uv + Q_vu) / 4``,
        ``h_u = -Q_uu / 2 - sum_v (Q_uv + Q_vu) / 4`` and the matching
        constant; :meth:`to_qubo` inverts the map exactly.
        """
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"QUBO matrix must be square, got shape {matrix.shape}")
        if not np.isfinite(matrix).all() or not math.isfinite(offset):
            raise ValueError("QUBO matrix and offset must be finite")
        sign = 1.0 if maximize else -1.0
        n = matrix.shape[0]
        linear = sign * np.diag(matrix)
        pair = sign * (matrix + matrix.T)  # pair[u, v] is the x_u x_v coefficient
        np.fill_diagonal(pair, 0.0)
        couplings = {
            (u, v): pair[u, v] / 4.0
            for u in range(n)
            for v in range(u + 1, n)
            if pair[u, v] != 0.0
        }
        fields = {
            u: -linear[u] / 2.0 - pair[u].sum() / 4.0
            for u in range(n)
        }
        constant = (
            sign * offset + linear.sum() / 2.0 + sum(couplings.values())
        )
        return cls(n, couplings, fields, constant=constant, name=name)

    def to_qubo(self) -> tuple[np.ndarray, float]:
        """The ``(Q, offset)`` pair with ``x^T Q x + offset`` equal to the value.

        ``Q`` is symmetric (pair coefficients split evenly across
        ``Q_uv``/``Q_vu``); ``offset`` absorbs the spin-side constant.
        ``DiagonalProblem.from_qubo(*problem.to_qubo())`` reproduces the
        problem's diagonal (up to float round-off in the re-derived
        constant and fields).
        """
        n = self.num_qubits
        matrix = np.zeros((n, n))
        for (u, v), j in self.couplings.items():
            matrix[u, v] += 2.0 * j
            matrix[v, u] += 2.0 * j
        row_coupling = matrix.sum(axis=1)  # = 2 * sum_v J_uv per node
        for u in range(n):
            h = self.fields.get(u, 0.0)
            matrix[u, u] = -2.0 * h - row_coupling[u]
        offset = (
            self.constant
            + sum(self.fields.values())
            + sum(self.couplings.values())
        )
        return matrix, offset


def local_search_value(
    problem: DiagonalProblem,
    restarts: int = 20,
    seed=None,
) -> tuple[float, np.ndarray]:
    """Randomized 1-flip local search over spin assignments.

    The generic analogue of
    :func:`~repro.qaoa.maxcut.local_search_maxcut`: flip any variable whose
    flip gain ``-2 s_u (h_u + sum_v J_uv s_v)`` is positive until no single
    flip improves, over ``restarts`` random starts.  Returns the best
    ``(value, bits)`` found -- a strong lower bound on
    :meth:`DiagonalProblem.best_value` for instances too large for the
    dense diagonal.
    """
    if restarts < 1:
        raise ValueError(f"restarts must be >= 1, got {restarts}")
    rng = as_generator(seed)
    n = problem.num_qubits
    neighbors: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    for (u, v), j in problem.couplings.items():
        neighbors[u].append((v, j))
        neighbors[v].append((u, j))
    fields = np.zeros(n)
    for u, h in problem.fields.items():
        fields[u] = h
    best_value = -np.inf
    best_bits: np.ndarray | None = None
    for _ in range(restarts):
        spins = 1.0 - 2.0 * rng.integers(0, 2, size=n)
        improved = True
        while improved:
            improved = False
            for u in range(n):
                local = fields[u] + sum(j * spins[v] for v, j in neighbors[u])
                if -2.0 * spins[u] * local > 0.0:
                    spins[u] = -spins[u]
                    improved = True
        bits = ((1.0 - spins) / 2.0).astype(np.int64)
        value = problem.value(bits)
        if value > best_value:
            best_value = value
            best_bits = bits
    assert best_bits is not None
    return float(best_value), best_bits
