"""QAOA expectation dispatch for diagonal problems.

Two exact paths, mirroring :mod:`repro.qaoa.expectation`:

- **statevector** (the parity oracle): the problem diagonal drops straight
  into the fast statevector engine -- :class:`DiagonalProblem` duck-types
  as a Hamiltonian (``.num_qubits`` + ``.diagonal``), so linear-Z fields
  cost nothing extra (they are phase-table entries like any other diagonal
  value).  Dense, hence guarded at ``n <= 26``.
- **lightcone**: for *field-free* problems only.  The phase diagonal
  ``constant + sum J_uv s_u s_v`` differs from the weighted-MaxCut diagonal
  of the coupling graph (``w_uv = -2 J_uv``) by an additive constant, i.e.
  a global phase, so the existing :class:`~repro.qaoa.lightcone.LightconePlan`
  machinery evaluates the state exactly; the expectation maps back via
  ``<value> = <cut> + constant + sum_uv J_uv`` (from
  ``<s_u s_v> = 1 - 2 P(cut)``).  For a MaxCut-encoded problem the
  coupling graph *is* the original weighted graph and the offset is zero,
  so this path is bit-identical to the graph-based engine.

``auto`` prefers the statevector up to ``exact_limit`` qubits, then the
lightcone when the problem is field-free, and falls back cleanly to the
dense path (up to the hard 26-qubit cap) when lightcones are too large --
raising :class:`~repro.qaoa.expectation.EngineLimitError` only when no
exact engine applies.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.problems.base import MAX_DENSE_QUBITS, DiagonalProblem
from repro.qaoa.expectation import EngineLimitError
from repro.qaoa.fast_sim import qaoa_expectation_fast
from repro.qaoa.lightcone import LightconePlan, LightconeTooLargeError, PlanCache

__all__ = [
    "problem_evaluator",
    "problem_expectation",
    "problem_expectation_reference",
    "problem_lightcone_plan",
]

_EXACT_LIMIT = 20


def _check_params(gammas, betas) -> tuple[list[float], list[float]]:
    gammas = [float(g) for g in np.atleast_1d(gammas)]
    betas = [float(b) for b in np.atleast_1d(betas)]
    if len(gammas) != len(betas) or not gammas:
        raise ValueError("gammas and betas must be non-empty and equal length")
    return gammas, betas


def problem_expectation_reference(
    problem: DiagonalProblem,
    gammas: Sequence[float],
    betas: Sequence[float],
) -> float:
    """Dense-diagonal statevector expectation -- the per-problem parity oracle.

    Always exact and engine-free (one statevector evolution against the
    problem's own diagonal); every other path must match it to high
    precision on small instances.
    """
    gammas, betas = _check_params(gammas, betas)
    if problem.num_qubits > MAX_DENSE_QUBITS:
        raise EngineLimitError(
            f"dense reference is limited to {MAX_DENSE_QUBITS} qubits, "
            f"got {problem.num_qubits}"
        )
    return qaoa_expectation_fast(problem, gammas, betas)


def problem_lightcone_plan(
    problem: DiagonalProblem,
    p: int,
    max_qubits: int = 20,
    plan_cache: "PlanCache | None" = None,
) -> tuple[LightconePlan, float]:
    """Compiled lightcone plan plus the additive offset for a field-free problem.

    ``plan.evaluate(gammas, betas) + offset`` is the exact expectation.
    Raises ``ValueError`` for field-carrying problems (their mixer-coupled
    linear terms break the per-edge decomposition) and
    :class:`~repro.qaoa.lightcone.LightconeTooLargeError` for dense
    coupling graphs.  ``plan_cache`` optionally shares compiled plans
    across problems with identical coupling structure (batch serving);
    reuse is result-neutral since a plan is a pure function of the graph.
    """
    if not problem.is_field_free:
        raise ValueError(
            f"problem {problem.name!r} has {len(problem.fields)} linear fields; "
            "the lightcone engine only supports field-free problems"
        )
    plan = LightconePlan.build_cached(
        problem.coupling_graph(), p, max_qubits=max_qubits, cache=plan_cache
    )
    offset = problem.constant + sum(problem.couplings.values())
    return plan, offset


def problem_evaluator(
    problem: DiagonalProblem,
    p: int,
    method: str = "auto",
    exact_limit: int = _EXACT_LIMIT,
    max_qubits: int = 20,
    plan_cache: "PlanCache | None" = None,
):
    """One-time engine dispatch: a reusable ``f(gammas, betas) -> float``.

    Pays the engine choice -- and, on the lightcone path, the whole
    structure-discovery/compile cost of the plan -- once, so optimizer
    loops evaluate thousands of points without rebuilding anything.  Also
    *fails fast*: when no exact engine can handle the problem at all, the
    :class:`~repro.qaoa.expectation.EngineLimitError` is raised here,
    before any caller spends an optimization budget.  The returned
    evaluator is only valid for depth-``p`` parameter vectors.
    """
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    n = problem.num_qubits

    def dense(gammas, betas):
        return problem_expectation_reference(problem, gammas, betas)

    if method == "statevector" or (method == "auto" and n <= exact_limit):
        if n > MAX_DENSE_QUBITS:
            raise EngineLimitError(
                f"dense reference is limited to {MAX_DENSE_QUBITS} qubits, got {n}"
            )
        return dense
    if method == "lightcone" or (method == "auto" and problem.is_field_free):
        try:
            plan, offset = problem_lightcone_plan(
                problem, p, max_qubits=max_qubits, plan_cache=plan_cache
            )
            return lambda gammas, betas: plan.evaluate(
                [float(g) for g in np.atleast_1d(gammas)],
                [float(b) for b in np.atleast_1d(betas)],
            ) + offset
        except LightconeTooLargeError as exc:
            if method == "auto" and n <= MAX_DENSE_QUBITS:
                return dense
            raise EngineLimitError(
                f"problem with {n} qubits at p={p} is beyond exact "
                f"simulation: {exc}"
            ) from exc
    if method == "auto":
        if n <= MAX_DENSE_QUBITS:
            return dense
        raise EngineLimitError(
            f"problem {problem.name!r} with {n} qubits carries linear fields; "
            f"no exact engine beyond {MAX_DENSE_QUBITS} qubits"
        )
    raise ValueError(f"unknown method {method!r}")


def problem_expectation(
    problem: DiagonalProblem,
    gammas: Sequence[float],
    betas: Sequence[float],
    method: str = "auto",
    exact_limit: int = _EXACT_LIMIT,
    max_qubits: int = 20,
) -> float:
    """Ideal QAOA expectation of ``problem`` with automatic engine choice.

    ``method`` is ``"auto"``, ``"statevector"`` or ``"lightcone"``.  One
    point, one dispatch; callers pricing many points on one problem should
    hold on to :func:`problem_evaluator` instead.
    """
    gammas, betas = _check_params(gammas, betas)
    evaluate = problem_evaluator(
        problem, len(gammas), method=method,
        exact_limit=exact_limit, max_qubits=max_qubits,
    )
    return evaluate(gammas, betas)
