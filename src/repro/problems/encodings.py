"""Concrete problem encodings onto :class:`~repro.problems.base.DiagonalProblem`.

Each encoder returns the objective *to maximize*; constrained problems
(independent set, vertex cover) use standard penalty encodings whose optima
are guaranteed feasible whenever ``penalty > 1`` (see each docstring for
the one-line argument).  The encodings:

Graph-based encoders relabel nodes to qubits ``0..n-1`` through
:func:`~repro.utils.graphs.relabel_to_range` (sorted original labels when
sortable, iteration order otherwise), so qubit ``q`` of the resulting
problem -- and of any pipeline ``assignment`` -- is
``sorted(graph.nodes())[q]``.

==============  ===========================================  =============
problem         maximized objective                          linear fields
==============  ===========================================  =============
maxcut          ``sum_e w_e (1 - s_u s_v) / 2``              no
mis             ``sum_u x_u - penalty sum_e x_u x_v``        yes
vertex-cover    ``-sum_u x_u - penalty sum_e (1-x_u)(1-x_v)``  yes
partition       ``-(sum_i a_i s_i)**2``                      no
sk              ``sum_{u<v} J_uv s_u s_v``, ``J ~ N(0,1)/sqrt(n)``  no
qubo            ``x^T Q x + offset``                         generally
==============  ===========================================  =============
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import networkx as nx
import numpy as np

from repro.problems.base import DiagonalProblem
from repro.utils.graphs import ensure_graph, relabel_to_range
from repro.utils.rng import as_generator

__all__ = [
    "max_independent_set_problem",
    "maxcut_problem",
    "min_vertex_cover_problem",
    "number_partitioning_problem",
    "qubo_problem",
    "sk_problem",
]


def _check_penalty(penalty: float) -> float:
    penalty = float(penalty)
    if not penalty > 1.0:
        raise ValueError(
            f"penalty must exceed 1 (the per-node reward) so constrained "
            f"optima stay feasible, got {penalty}"
        )
    return penalty


def maxcut_problem(graph: nx.Graph) -> DiagonalProblem:
    """Weighted MaxCut as a diagonal problem: ``J_uv = -w_uv / 2``.

    The pre-existing workload, now one encoding among many.  The diagonal
    equals :func:`~repro.qaoa.hamiltonian.cut_values` of the (relabeled)
    graph, and :meth:`~DiagonalProblem.coupling_graph` returns that graph
    with its original weights bit-for-bit (``-2 * (-w/2) = w``), so
    reduction and lightcone evaluation match the graph-based path exactly.

    One caveat: edges of weight exactly 0 contribute nothing to the cost
    and are dropped from the encoding, so they also vanish from the
    coupling graph.  A zero-weight edge that was load-bearing for
    *connectivity* (e.g. the only bridge between two clusters) therefore
    changes how the SA reducer sees the instance relative to reducing the
    raw graph -- which is the honest view: the QAOA landscape genuinely
    does not depend on such edges.
    """
    ensure_graph(graph)
    relabeled = relabel_to_range(graph)
    couplings: dict[tuple[int, int], float] = {}
    total = 0.0
    for u, v, data in relabeled.edges(data=True):
        weight = float(data.get("weight", 1.0))
        if not math.isfinite(weight):
            raise ValueError(f"edge ({u}, {v}) weight must be finite, got {weight!r}")
        if u == v or weight == 0.0:
            continue
        couplings[(u, v)] = -weight / 2.0
        total += weight / 2.0
    return DiagonalProblem(
        relabeled.number_of_nodes(), couplings, constant=total, name="maxcut"
    )


def max_independent_set_problem(
    graph: nx.Graph, penalty: float = 2.0
) -> DiagonalProblem:
    """Max-Independent-Set: maximize ``sum_u x_u - penalty * sum_e x_u x_v``.

    Any maximizer is an independent set when ``penalty > 1``: a selected
    node with a selected neighbor contributes at most 1 but costs at least
    ``penalty`` per violated edge, so dropping it strictly improves the
    objective.  The optimum value therefore equals the independence number.
    Linear terms make this a *field-carrying* problem (dense-engine path).
    """
    ensure_graph(graph)
    penalty = _check_penalty(penalty)
    relabeled = relabel_to_range(graph)
    n = relabeled.number_of_nodes()
    matrix = np.zeros((n, n))
    np.fill_diagonal(matrix, 1.0)
    for u, v in relabeled.edges():
        if u != v:
            matrix[min(u, v), max(u, v)] -= penalty
    return DiagonalProblem.from_qubo(matrix, name="mis")


def min_vertex_cover_problem(
    graph: nx.Graph, penalty: float = 2.0
) -> DiagonalProblem:
    """Min-vertex-cover: maximize ``-sum_u x_u - penalty * sum_e (1-x_u)(1-x_v)``.

    Any maximizer is a vertex cover when ``penalty > 1``: covering an
    uncovered edge's endpoint costs 1 and recovers at least ``penalty``.
    The optimum value is ``-|minimum cover|`` (so values are <= 0; compare
    magnitudes, not ratios).
    """
    ensure_graph(graph)
    penalty = _check_penalty(penalty)
    relabeled = relabel_to_range(graph)
    n = relabeled.number_of_nodes()
    matrix = np.zeros((n, n))
    np.fill_diagonal(matrix, -1.0)
    num_edges = 0
    for u, v in relabeled.edges():
        if u == v:
            continue
        num_edges += 1
        matrix[u, u] += penalty
        matrix[v, v] += penalty
        matrix[min(u, v), max(u, v)] -= penalty
    return DiagonalProblem.from_qubo(
        matrix, offset=-penalty * num_edges, name="vertex-cover"
    )


def number_partitioning_problem(numbers: Sequence[float]) -> DiagonalProblem:
    """Number partitioning: maximize ``-(sum_i a_i s_i)**2``.

    Spin +1/-1 assigns each number to one of two piles; the squared
    residual expands to ``sum a_i**2 + 2 sum_{i<j} a_i a_j s_i s_j``, so
    the encoding is a complete coupling graph with ``J_ij = -2 a_i a_j``
    and constant ``-sum a_i**2``.  A perfect partition scores 0 (the
    maximum possible); field-free, so large instances could in principle
    route through the lightcone engine -- though the complete coupling
    graph keeps them on the dense path in practice.
    """
    values = [float(a) for a in numbers]
    if len(values) < 2:
        raise ValueError(f"need at least 2 numbers, got {len(values)}")
    for a in values:
        if not math.isfinite(a):
            raise ValueError(f"numbers must be finite, got {a!r}")
    couplings = {
        (i, j): -2.0 * values[i] * values[j]
        for i in range(len(values))
        for j in range(i + 1, len(values))
    }
    constant = -sum(a * a for a in values)
    return DiagonalProblem(len(values), couplings, constant=constant, name="partition")


def sk_problem(
    num_spins: int,
    seed: int | np.random.Generator | None = None,
    distribution: str = "gaussian",
) -> DiagonalProblem:
    """A Sherrington-Kirkpatrick spin glass: all-to-all random couplings.

    ``distribution="gaussian"`` draws ``J_uv ~ N(0, 1) / sqrt(n)`` (the
    standard SK normalization, keeping the ground-state energy ~``0.76 n``);
    ``"spin"`` draws Rademacher ``+/-1 / sqrt(n)`` couplings.  The stored
    objective ``sum_{u<v} J_uv s_u s_v`` is maximized, i.e. the negated SK
    energy; by coupling symmetry the ensemble is unchanged.  Field-free.
    """
    if num_spins < 2:
        raise ValueError(f"num_spins must be >= 2, got {num_spins}")
    if distribution not in ("gaussian", "spin"):
        raise ValueError(f"unknown distribution {distribution!r}")
    rng = as_generator(seed)
    count = num_spins * (num_spins - 1) // 2
    if distribution == "gaussian":
        draws = rng.normal(0.0, 1.0, size=count)
    else:
        draws = rng.choice([-1.0, 1.0], size=count)
    draws = draws / math.sqrt(num_spins)
    pairs = (
        (u, v) for u in range(num_spins) for v in range(u + 1, num_spins)
    )
    couplings = {pair: float(j) for pair, j in zip(pairs, draws)}
    return DiagonalProblem(num_spins, couplings, name="sk")


def qubo_problem(
    matrix: np.ndarray,
    offset: float = 0.0,
    maximize: bool = True,
    name: str = "qubo",
) -> DiagonalProblem:
    """An arbitrary QUBO ``x^T Q x + offset`` (see
    :meth:`DiagonalProblem.from_qubo`); ``maximize=False`` negates first."""
    return DiagonalProblem.from_qubo(matrix, offset=offset, maximize=maximize, name=name)
