"""Red-QAOA: efficient variational optimization through circuit reduction.

A full reproduction of the ASPLOS 2024 paper by Wang, Fang, Li, and Nair.
The headline API:

>>> import networkx as nx
>>> from repro import RedQAOA
>>> graph = nx.erdos_renyi_graph(12, 0.4, seed=7)
>>> red = RedQAOA(seed=7)
>>> result = red.reduce(graph)
>>> result.reduced_graph.number_of_nodes() < graph.number_of_nodes()
True

Subpackages
-----------
``repro.core``
    The paper's contribution: simulated-annealing graph reduction and the
    end-to-end Red-QAOA optimization pipeline.
``repro.quantum``
    The simulation substrate: circuits, statevector / density-matrix /
    trajectory simulators, noise models, fake device backends, transpiler.
``repro.qaoa``
    MaxCut QAOA: Hamiltonians, fast simulation engines, energy landscapes,
    classical optimizers.
``repro.problems``
    The general Ising/QUBO workload layer: :class:`DiagonalProblem`
    (couplings + fields + constant, QUBO round-trip converters) and
    encodings for MaxCut, Max-Independent-Set, vertex cover, number
    partitioning, SK spin glasses, and arbitrary QUBOs -- all runnable
    through the same reduce -> optimize -> transfer pipeline.
``repro.pooling``
    GNN graph-pooling baselines (Top-K, SAG, ASA).
``repro.datasets``
    Synthetic AIDS/LINUX/IMDb-like datasets and random-graph generators.
``repro.transfer``
    The parameter-transfer baseline from the prior-work comparison.
``repro.analysis``
    Metrics, runtime, and throughput models used by the evaluation.
``repro.service``
    Batch serving: :class:`JobSpec` fingerprints, the persistent
    :class:`ResultStore`, the deduplicating :class:`BatchScheduler`, and
    manifest-driven :class:`Campaign` runs (``red-qaoa batch``).
``repro.serve``
    The long-running job daemon: a fingerprint-sharded queue with
    backpressure and dead letters, a deterministic worker pool (N workers
    bit-identical to 1), and a unix-socket submit/poll/stream protocol
    (``red-qaoa serve`` / ``red-qaoa submit``).
``repro.obs``
    Observability: span tracing (``--trace`` / ``red-qaoa trace
    summarize``), the mergeable metrics registry with Prometheus
    exposition (``red-qaoa status``), and structured daemon logs -- a
    pure side channel, bit-identical results on or off.
"""

from repro.core import GraphReducer, RedQAOA, ReductionResult, simulated_annealing
from repro.problems import (
    DiagonalProblem,
    max_independent_set_problem,
    maxcut_problem,
    min_vertex_cover_problem,
    number_partitioning_problem,
    problem_expectation,
    qubo_problem,
    sk_problem,
)
from repro.qaoa import (
    approximation_ratio,
    brute_force_maxcut,
    compute_landscape,
    landscape_mse,
    maxcut_expectation,
    noisy_maxcut_expectation,
)
from repro.quantum import FakeBackend, NoiseModel, QuantumCircuit, get_backend
from repro.service import BatchScheduler, Campaign, JobSpec, ResultStore

__all__ = [
    "BatchScheduler",
    "Campaign",
    "DiagonalProblem",
    "JobSpec",
    "ResultStore",
    "FakeBackend",
    "GraphReducer",
    "NoiseModel",
    "QuantumCircuit",
    "RedQAOA",
    "ReductionResult",
    "approximation_ratio",
    "brute_force_maxcut",
    "compute_landscape",
    "get_backend",
    "landscape_mse",
    "max_independent_set_problem",
    "maxcut_expectation",
    "maxcut_problem",
    "min_vertex_cover_problem",
    "noisy_maxcut_expectation",
    "number_partitioning_problem",
    "problem_expectation",
    "qubo_problem",
    "simulated_annealing",
    "sk_problem",
    "__version__",
]

__version__ = "1.5.0"
