"""Heavy-edge matching coarsening (multilevel-partitioning style baseline).

An *extension baseline* beyond the paper's three GNN poolers: instead of
selecting nodes, coarsening repeatedly **contracts** a maximal matching of
heavy edges, merging endpoint pairs into super-nodes and accumulating edge
weights -- the coarsening phase of METIS-style multilevel partitioners.

Contraction produces *weighted* graphs even from unweighted inputs, which
the QAOA stack supports end to end (weighted Hamiltonians, the weighted
p=1 closed form, weighted brute force).  The interesting property for the
Red-QAOA comparison: contraction preserves total cut weight structure
better than node deletion, but distorts degree structure -- so its AND
ratio (and hence landscape match) is typically worse, illustrating *why*
the AND objective matters.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.pooling.base import GraphPooler
from repro.utils.graphs import ensure_graph
from repro.utils.rng import as_generator

__all__ = ["HeavyEdgeCoarsening"]


class HeavyEdgeCoarsening(GraphPooler):
    """Coarsen by contracting maximal heavy-edge matchings.

    ``pool(graph, num_nodes)`` contracts matchings until the graph has at
    most ``num_nodes`` super-nodes (one extra partial matching round may be
    needed to land exactly).  Edge weights accumulate: parallel edges
    created by a contraction merge by weight addition.
    """

    name = "coarsen"

    def __init__(self, seed: int | np.random.Generator | None = 0):
        self._rng = as_generator(seed)

    def scores(self, graph: nx.Graph) -> np.ndarray:  # pragma: no cover - unused
        raise NotImplementedError("coarsening does not score nodes")

    def pool(self, graph: nx.Graph, num_nodes: int) -> nx.Graph:
        ensure_graph(graph)
        n = graph.number_of_nodes()
        if not 1 <= num_nodes <= n:
            raise ValueError(f"num_nodes must be in [1, {n}], got {num_nodes}")
        current = nx.Graph()
        current.add_nodes_from(graph.nodes())
        for u, v, data in graph.edges(data=True):
            current.add_edge(u, v, weight=float(data.get("weight", 1.0)))
        guard = 0
        while current.number_of_nodes() > num_nodes:
            guard += 1
            if guard > n:  # pragma: no cover - safety net
                break
            budget = current.number_of_nodes() - num_nodes
            matching = self._heavy_matching(current, budget)
            if not matching:
                break  # no contractible edges left (isolated nodes only)
            for u, v in matching:
                current = _contract(current, u, v)
        return _relabel(current)

    def _heavy_matching(self, graph: nx.Graph, budget: int) -> list[tuple]:
        """Greedy maximal matching by descending weight, capped at ``budget``."""
        edges = list(graph.edges(data="weight"))
        order = np.argsort([-w for *_, w in edges], kind="stable")
        matched: set = set()
        matching: list[tuple] = []
        for index in order:
            if len(matching) >= budget:
                break
            u, v, _ = edges[int(index)]
            if u in matched or v in matched:
                continue
            matched.update((u, v))
            matching.append((u, v))
        return matching


def _contract(graph: nx.Graph, u, v) -> nx.Graph:
    """Merge ``v`` into ``u``, summing parallel edge weights."""
    result = nx.Graph()
    result.add_nodes_from(n for n in graph.nodes() if n != v)
    for a, b, data in graph.edges(data=True):
        a = u if a == v else a
        b = u if b == v else b
        if a == b:
            continue  # the contracted edge itself disappears
        w = float(data.get("weight", 1.0))
        if result.has_edge(a, b):
            result[a][b]["weight"] += w
        else:
            result.add_edge(a, b, weight=w)
    return result


def _relabel(graph: nx.Graph) -> nx.Graph:
    try:
        ordered = sorted(graph.nodes())
    except TypeError:
        ordered = list(graph.nodes())
    mapping = {node: index for index, node in enumerate(ordered)}
    return nx.relabel_nodes(graph, mapping)
