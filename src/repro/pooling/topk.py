"""Top-K pooling [Gao & Ji 2019; Cangea et al. 2018].

Scores each node by the projection of its feature vector onto a learnable
direction ``w`` (``score = X @ w / ||w||``) and keeps the top-k nodes.  Our
``w`` is seeded-random (untrained), matching the reproduction protocol in
DESIGN.md.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.pooling.base import GraphPooler
from repro.pooling.features import FEATURE_NAMES, node_feature_matrix
from repro.utils.rng import as_generator

__all__ = ["TopKPooling"]


class TopKPooling(GraphPooler):
    """Projection-score top-k node selection."""

    name = "topk"

    def __init__(self, seed: int | np.random.Generator | None = 0):
        rng = as_generator(seed)
        self.projection = rng.normal(size=len(FEATURE_NAMES))

    def scores(self, graph: nx.Graph) -> np.ndarray:
        features = node_feature_matrix(graph)
        norm = np.linalg.norm(self.projection)
        return features @ (self.projection / norm)
