"""Self-Attention Graph (SAG) pooling [Lee, Lee, Kang 2019].

Node importance comes from a graph convolution over the features
(``score = GCN(A, X)``), so selection is structure-aware: a node's score
depends on its neighborhood, not just its own features.  Top-k selection
and subgraph construction follow the original method.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.pooling.base import GraphPooler
from repro.pooling.features import FEATURE_NAMES, node_feature_matrix
from repro.pooling.gnn import GCN, normalized_adjacency

__all__ = ["SAGPooling"]


class SAGPooling(GraphPooler):
    """GCN-attention node scoring with top-k selection."""

    name = "sag"

    def __init__(self, seed: int | np.random.Generator | None = 0, hidden: int = 8):
        if hidden < 1:
            raise ValueError(f"hidden must be >= 1, got {hidden}")
        self.gcn = GCN((len(FEATURE_NAMES), hidden, 1), seed=seed)

    def scores(self, graph: nx.Graph) -> np.ndarray:
        a_hat = normalized_adjacency(graph)
        features = node_feature_matrix(graph)
        raw = self.gcn.forward(a_hat, features)[:, 0]
        return np.tanh(raw)  # SAGPool applies tanh to attention scores
