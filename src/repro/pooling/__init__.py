"""GNN-based graph pooling baselines (paper Secs. 2.2.2, 4.5, 5.5).

The paper compares Red-QAOA against three torch-geometric poolers: Top-K,
Self-Attention Graph (SAG) pooling, and Adaptive Structure Aware (ASA)
pooling.  This subpackage reimplements them in NumPy over the same
hand-crafted node-feature vector the paper feeds them (degree, clustering
coefficient, betweenness / closeness / eigenvector centralities).  Weights
are seeded-random rather than trained; see DESIGN.md for why that preserves
the comparison (fixed-ratio pooling without landscape feedback is the
baseline property being tested, not weight quality).

All poolers share the interface ``pool(graph, num_nodes) -> nx.Graph``.
"""

from repro.pooling.asa import ASAPooling
from repro.pooling.base import GraphPooler
from repro.pooling.coarsening import HeavyEdgeCoarsening
from repro.pooling.features import node_feature_matrix
from repro.pooling.sag import SAGPooling
from repro.pooling.topk import TopKPooling

__all__ = [
    "ASAPooling",
    "GraphPooler",
    "HeavyEdgeCoarsening",
    "SAGPooling",
    "TopKPooling",
    "node_feature_matrix",
    "get_pooler",
]


def get_pooler(name: str, seed: int | None = 0) -> GraphPooler:
    """Construct a pooler by name: ``"topk"``, ``"sag"``, ``"asa"``, or
    ``"coarsen"`` (the edge-contraction extension baseline)."""
    table = {
        "topk": TopKPooling,
        "sag": SAGPooling,
        "asa": ASAPooling,
        "coarsen": HeavyEdgeCoarsening,
    }
    key = name.lower()
    if key not in table:
        raise KeyError(f"unknown pooler {name!r}; available: {sorted(table)}")
    return table[key](seed=seed)
