"""Adaptive Structure Aware (ASA) pooling [Ranjan, Sanyal, Talukdar 2020].

ASAPool forms a candidate cluster around every node (the node plus its
1-hop neighborhood), computes a cluster representation through attention
over member features, scores clusters with a learned vector, selects the
top-k clusters, and connects two selected clusters when their members were
adjacent in the original graph.  This differs from Top-K/SAG in that the
pooled graph is built from cluster connectivity rather than an induced
subgraph -- which tends to *densify* small graphs and is one reason ASA
performs worst in the paper's Fig. 19.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.pooling.base import GraphPooler
from repro.pooling.features import FEATURE_NAMES, node_feature_matrix
from repro.utils.graphs import ensure_graph
from repro.utils.rng import as_generator

__all__ = ["ASAPooling"]


class ASAPooling(GraphPooler):
    """Cluster-attention pooling with cluster-connectivity coarsening."""

    name = "asa"

    def __init__(self, seed: int | np.random.Generator | None = 0):
        rng = as_generator(seed)
        dim = len(FEATURE_NAMES)
        self.attention = rng.normal(size=2 * dim)  # [query | member] attention
        self.score_vector = rng.normal(size=dim)

    def scores(self, graph: nx.Graph) -> np.ndarray:
        """Cluster fitness score for the cluster centered at each node."""
        representations = self._cluster_representations(graph)
        return representations @ self.score_vector

    def pool(self, graph: nx.Graph, num_nodes: int) -> nx.Graph:
        ensure_graph(graph)
        n = graph.number_of_nodes()
        if not 1 <= num_nodes <= n:
            raise ValueError(f"num_nodes must be in [1, {n}], got {num_nodes}")
        nodes = sorted(graph.nodes())
        score = self.scores(graph)
        order = np.argsort(-score, kind="stable")
        centers = [nodes[i] for i in order[:num_nodes]]
        members = {
            center: {center} | set(graph.neighbors(center)) for center in centers
        }
        pooled = nx.Graph()
        pooled.add_nodes_from(range(num_nodes))
        for i, ci in enumerate(centers):
            for j in range(i + 1, num_nodes):
                cj = centers[j]
                if _clusters_adjacent(graph, members[ci], members[cj]):
                    pooled.add_edge(i, j)
        return pooled

    def _cluster_representations(self, graph: nx.Graph) -> np.ndarray:
        features = node_feature_matrix(graph)
        nodes = sorted(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        dim = features.shape[1]
        reps = np.empty_like(features)
        for i, node in enumerate(nodes):
            member_ids = [i] + [index[v] for v in graph.neighbors(node)]
            member_feats = features[member_ids]
            query = features[i]
            logits = np.array(
                [
                    self.attention[:dim] @ query + self.attention[dim:] @ member
                    for member in member_feats
                ]
            )
            logits -= logits.max()  # stable softmax
            weights = np.exp(logits)
            weights /= weights.sum()
            reps[i] = weights @ member_feats
        return reps


def _clusters_adjacent(graph: nx.Graph, a: set, b: set) -> bool:
    """Whether any member of ``a`` touches any member of ``b``."""
    if a & b:
        return True
    for u in a:
        for v in graph.neighbors(u):
            if v in b:
                return True
    return False
