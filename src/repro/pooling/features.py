"""Node feature vectors for the pooling baselines (paper Sec. 5.5).

The feature matrix stacks, per node: degree, clustering coefficient,
betweenness centrality, closeness centrality, and eigenvector centrality --
"insights into the node's connectivity, position within the network, and
influence".  Each column is min-max normalized to [0, 1] so the seeded
linear scorers see comparable scales.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.utils.graphs import ensure_graph

__all__ = ["FEATURE_NAMES", "node_feature_matrix"]

FEATURE_NAMES = (
    "degree",
    "clustering",
    "betweenness",
    "closeness",
    "eigenvector",
)


def node_feature_matrix(graph: nx.Graph) -> np.ndarray:
    """Feature matrix of shape ``(n, 5)``; rows follow sorted node order."""
    ensure_graph(graph)
    nodes = sorted(graph.nodes())
    degree = dict(graph.degree())
    clustering = nx.clustering(graph)
    betweenness = nx.betweenness_centrality(graph)
    closeness = nx.closeness_centrality(graph)
    try:
        eigenvector = nx.eigenvector_centrality_numpy(graph)
    except (nx.NetworkXException, np.linalg.LinAlgError, TypeError, ValueError):
        # Degenerate spectra (e.g. single edge, disconnected pieces): fall
        # back to degree as the influence proxy.
        eigenvector = {node: float(degree[node]) for node in nodes}
    columns = [degree, clustering, betweenness, closeness, eigenvector]
    matrix = np.array(
        [[float(col[node]) for col in columns] for node in nodes], dtype=float
    )
    return _minmax_columns(matrix)


def _minmax_columns(matrix: np.ndarray) -> np.ndarray:
    low = matrix.min(axis=0, keepdims=True)
    span = matrix.max(axis=0, keepdims=True) - low
    span[span == 0] = 1.0
    return (matrix - low) / span
