"""Shared pooling interface and node-selection helpers."""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.utils.graphs import ensure_graph, relabel_to_range

__all__ = ["GraphPooler", "induced_pooled_graph"]


class GraphPooler:
    """Interface: reduce a graph to a fixed node budget.

    Subclasses implement :meth:`scores`; the base class handles top-k
    selection and subgraph construction.  Unlike Red-QAOA's reducer, a
    pooler performs no dynamic AND/MSE checking -- it selects exactly
    ``num_nodes`` nodes by learned importance, which is the fixed-ratio
    behaviour the paper critiques (Sec. 4.5).
    """

    name: str = "pooler"

    def scores(self, graph: nx.Graph) -> np.ndarray:
        """Importance score per node, in sorted node order."""
        raise NotImplementedError

    def pool(self, graph: nx.Graph, num_nodes: int) -> nx.Graph:
        """Pooled graph with exactly ``num_nodes`` nodes, labels 0..k-1."""
        ensure_graph(graph)
        n = graph.number_of_nodes()
        if not 1 <= num_nodes <= n:
            raise ValueError(f"num_nodes must be in [1, {n}], got {num_nodes}")
        score = np.asarray(self.scores(graph), dtype=float)
        if score.shape != (n,):
            raise ValueError(f"scores must have shape ({n},), got {score.shape}")
        nodes = sorted(graph.nodes())
        order = np.argsort(-score, kind="stable")
        keep = {nodes[i] for i in order[:num_nodes]}
        return induced_pooled_graph(graph, keep)

    def pool_ratio(self, graph: nx.Graph, keep_ratio: float) -> nx.Graph:
        """Pool keeping ``ceil(keep_ratio * n)`` nodes."""
        if not 0.0 < keep_ratio <= 1.0:
            raise ValueError(f"keep_ratio must be in (0, 1], got {keep_ratio}")
        n = graph.number_of_nodes()
        return self.pool(graph, max(1, int(np.ceil(keep_ratio * n))))


def induced_pooled_graph(graph: nx.Graph, keep: set) -> nx.Graph:
    """Induced subgraph on ``keep``, relabeled to ``0..k-1``.

    Matches torch-geometric's Top-K/SAG behaviour: edges are those of the
    original graph among the kept nodes (filter_adj).  The result may be
    disconnected or even edge-free -- a real failure mode of fixed-ratio
    pooling that the Fig. 8 comparison exposes.
    """
    sub = nx.Graph(graph.subgraph(keep))
    return relabel_to_range(sub) if sub.number_of_nodes() else sub
