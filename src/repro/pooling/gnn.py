"""A minimal NumPy graph convolutional network (GCN).

Implements Kipf-Welling propagation ``H' = relu(A_hat @ H @ W)`` with the
symmetric-normalized adjacency ``A_hat = D^{-1/2} (A + I) D^{-1/2}``.
Weights are Glorot-initialized from a seed, standing in for the trained
weights of the torch-geometric poolers (see package docstring).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.utils.graphs import ensure_graph
from repro.utils.rng import as_generator

__all__ = ["GCN", "normalized_adjacency"]


def normalized_adjacency(graph: nx.Graph) -> np.ndarray:
    """``D^{-1/2} (A + I) D^{-1/2}`` over sorted node order."""
    ensure_graph(graph)
    nodes = sorted(graph.nodes())
    a = nx.to_numpy_array(graph, nodelist=nodes) + np.eye(len(nodes))
    d_inv_sqrt = 1.0 / np.sqrt(a.sum(axis=1))
    return a * d_inv_sqrt[:, None] * d_inv_sqrt[None, :]


class GCN:
    """A stack of GCN layers with seeded Glorot weights.

    ``dims`` is the layer width sequence, e.g. ``(5, 8, 1)`` for a scorer
    that maps 5 input features to one importance score per node.  The final
    layer is linear (no ReLU) so scores can be negative.
    """

    def __init__(self, dims: tuple[int, ...], seed: int | np.random.Generator | None = 0):
        if len(dims) < 2:
            raise ValueError(f"need at least input and output dims, got {dims}")
        rng = as_generator(seed)
        self.weights: list[np.ndarray] = []
        for fan_in, fan_out in zip(dims, dims[1:]):
            scale = np.sqrt(6.0 / (fan_in + fan_out))
            self.weights.append(rng.uniform(-scale, scale, size=(fan_in, fan_out)))

    def forward(self, a_hat: np.ndarray, features: np.ndarray) -> np.ndarray:
        """Propagate ``features`` through the network."""
        if features.shape[1] != self.weights[0].shape[0]:
            raise ValueError(
                f"feature dim {features.shape[1]} != input dim {self.weights[0].shape[0]}"
            )
        h = features
        for index, w in enumerate(self.weights):
            h = a_hat @ h @ w
            if index < len(self.weights) - 1:
                h = np.maximum(h, 0.0)  # ReLU on hidden layers
        return h
