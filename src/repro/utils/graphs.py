"""Graph helpers shared by the reduction core, datasets, and analyses.

All public functions operate on :class:`networkx.Graph` instances with
hashable node labels.  Functions that hand graphs to the quantum layer first
relabel nodes to ``0..n-1`` (see :func:`relabel_to_range`) because qubits are
indexed by position.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from collections.abc import Iterable, Sequence

import networkx as nx
import numpy as np

from repro.utils.rng import as_generator

__all__ = [
    "average_node_degree",
    "average_node_strength",
    "connected_random_subgraph",
    "edge_list",
    "ensure_graph",
    "is_connected_subset",
    "is_weighted",
    "neighbor_swap",
    "relabel_to_range",
    "nonisomorphic_connected_subgraphs",
]


def ensure_graph(graph: nx.Graph) -> nx.Graph:
    """Validate that ``graph`` is a simple undirected graph with >= 1 node.

    Raises ``TypeError`` for directed/multi graphs and ``ValueError`` for
    empty graphs; returns the graph unchanged otherwise.
    """
    if not isinstance(graph, nx.Graph) or isinstance(graph, (nx.DiGraph, nx.MultiGraph)):
        raise TypeError(f"expected an undirected simple networkx.Graph, got {type(graph).__name__}")
    if graph.number_of_nodes() == 0:
        raise ValueError("graph must contain at least one node")
    return graph


def average_node_degree(graph: nx.Graph) -> float:
    """Average Node Degree (AND) of ``graph``: ``2|E| / |V|``.

    This is the key similarity metric of Red-QAOA (paper Sec. 4.2): graphs
    with close ANDs tend to share QAOA subgraph structure and therefore have
    near-identical energy landscapes.
    """
    ensure_graph(graph)
    n = graph.number_of_nodes()
    return 2.0 * graph.number_of_edges() / n


def average_node_strength(graph: nx.Graph) -> float:
    """Weighted AND (average node *strength*): ``2 * sum_e |w_e| / |V|``.

    The weighted generalization of :func:`average_node_degree` used by the
    SA reducer on weighted instances: node strength (sum of incident edge
    weight magnitudes) replaces degree, so the reducer preserves weighted
    rather than combinatorial connectivity.  Magnitudes, not signed weights:
    the QAOA cost layer enters through ``cos(gamma * w)``, which is even in
    ``w``, and signed sums cancel to zero on +/-1 spin-glass instances,
    which would leave the annealer with no signal.  On unit-weight graphs
    the magnitude sum is exactly the edge count, so this is bit-identical
    to the unweighted AND.

    The sum uses ``math.fsum`` so the result is correctly rounded and
    independent of edge iteration order -- the canonical value the
    incremental annealer reproduces with exact integer arithmetic.
    """
    ensure_graph(graph)
    total = math.fsum(abs(data.get("weight", 1.0)) for _, _, data in graph.edges(data=True))
    return 2.0 * total / graph.number_of_nodes()


def edge_list(graph: nx.Graph) -> list[tuple[int, int]]:
    """Edges of ``graph`` as ``(min, max)`` tuples, lexicographically sorted."""
    return sorted((min(u, v), max(u, v)) for u, v in graph.edges())


def relabel_to_range(graph: nx.Graph) -> nx.Graph:
    """Return a copy of ``graph`` with nodes relabeled to ``0..n-1``.

    Labels are assigned in sorted order of the original labels when the
    labels are sortable, and in iteration order otherwise, so the mapping is
    deterministic for a given graph.
    """
    ensure_graph(graph)
    try:
        ordered = sorted(graph.nodes())
    except TypeError:
        ordered = list(graph.nodes())
    mapping = {node: index for index, node in enumerate(ordered)}
    return nx.relabel_nodes(graph, mapping)


def is_weighted(graph: nx.Graph) -> bool:
    """Whether any edge carries a non-unit ``weight`` attribute.

    The single weightedness predicate shared by engine dispatch, dataset
    stats, and the reduction cache, so they can never drift apart.
    """
    return any(
        data.get("weight", 1.0) != 1.0 for _, _, data in graph.edges(data=True)
    )


def is_connected_subset(graph: nx.Graph, nodes: Iterable) -> bool:
    """Whether ``nodes`` induce a connected subgraph of ``graph``."""
    nodes = set(nodes)
    if not nodes:
        return False
    if not nodes.issubset(graph.nodes()):
        raise ValueError("nodes must all belong to the graph")
    return nx.is_connected(graph.subgraph(nodes))


def connected_random_subgraph(
    graph: nx.Graph,
    size: int,
    seed: int | np.random.Generator | None = None,
) -> set:
    """Sample a connected induced subgraph of ``graph`` with ``size`` nodes.

    Uses a randomized BFS-style expansion: start from a random node and
    repeatedly absorb a random frontier node until ``size`` nodes are chosen.
    Matches ``RandomSubgraph`` from Algorithm 1 in the paper.

    Returns the node set; use ``graph.subgraph(result)`` for the graph view.
    Raises ``ValueError`` when ``size`` is out of range or when the graph has
    no connected component of at least ``size`` nodes.
    """
    ensure_graph(graph)
    if not 1 <= size <= graph.number_of_nodes():
        raise ValueError(
            f"size must be within [1, {graph.number_of_nodes()}], got {size}"
        )
    rng = as_generator(seed)
    components = [c for c in nx.connected_components(graph) if len(c) >= size]
    if not components:
        raise ValueError(f"graph has no connected component with >= {size} nodes")
    component = components[int(rng.integers(len(components)))]
    start = _choice(rng, sorted(component))
    chosen = {start}
    # The frontier minus the chosen set is kept as a sorted list maintained
    # by insertion, so each absorb costs O(deg log + insert) instead of
    # re-sorting the whole frontier; the candidate order (and hence the RNG
    # draw sequence) is identical to sorting from scratch each round.
    candidate_set = (set(graph.neighbors(start)) & component) - chosen
    candidates = sorted(candidate_set)
    while len(chosen) < size:
        index = int(rng.integers(len(candidates)))
        nxt = candidates[index]
        chosen.add(nxt)
        candidate_set.discard(nxt)
        del candidates[index]
        for neighbor in graph.neighbors(nxt):
            if neighbor not in chosen and neighbor not in candidate_set:
                candidate_set.add(neighbor)
                insort(candidates, neighbor)
    return chosen


def neighbor_swap(
    graph: nx.Graph,
    nodes: set,
    seed: int | np.random.Generator | None = None,
    max_attempts: int = 200,
) -> set:
    """One SA move: swap a subgraph node for an outside node (Algorithm 1).

    Picks a random node inside ``nodes`` and a random node outside with at
    least one edge into the remaining subgraph, so connectivity is preserved.
    Falls back to returning ``nodes`` unchanged when no connectivity-
    preserving swap exists within ``max_attempts`` random trials.
    """
    ensure_graph(graph)
    nodes = set(nodes)
    outside = sorted(set(graph.nodes()) - nodes)
    if not outside or not nodes:
        return set(nodes)
    rng = as_generator(seed)
    inside = sorted(nodes)
    for _ in range(max_attempts):
        removed = _choice(rng, inside)
        kept = nodes - {removed}
        candidates = [v for v in outside if any(u in kept for u in graph.neighbors(v))]
        if not candidates:
            continue
        added = _choice(rng, candidates)
        candidate = kept | {added}
        if len(candidate) == 1 or nx.is_connected(graph.subgraph(candidate)):
            return candidate
    return set(nodes)


def nonisomorphic_connected_subgraphs(
    graph: nx.Graph,
    size: int,
    max_count: int | None = None,
) -> list[nx.Graph]:
    """All non-isomorphic connected induced subgraphs of ``graph`` of ``size``.

    Used by the Fig. 5 / Fig. 9 experiments, which enumerate every unique
    subgraph shape of a small graph.  Enumeration is exponential; guard large
    inputs with ``max_count`` (enumeration stops once reached).
    """
    ensure_graph(graph)
    if not 1 <= size <= graph.number_of_nodes():
        raise ValueError(f"size out of range: {size}")
    found: list[nx.Graph] = []
    seen_sets: set[frozenset] = set()
    # Enumerate connected node subsets via DFS expansion from each node.
    nodes = sorted(graph.nodes())
    for root in nodes:
        stack = [(frozenset([root]), frozenset(graph.neighbors(root)))]
        while stack:
            chosen, frontier = stack.pop()
            if len(chosen) == size:
                if chosen in seen_sets:
                    continue
                seen_sets.add(chosen)
                candidate = graph.subgraph(chosen)
                if not any(nx.is_isomorphic(candidate, g) for g in found):
                    found.append(nx.Graph(candidate))
                    if max_count is not None and len(found) >= max_count:
                        return found
                continue
            for v in sorted(frontier):
                if v <= root and v not in chosen:
                    # Keep subsets rooted at their minimum node to avoid
                    # re-enumerating the same set from multiple roots.
                    continue
                new_chosen = chosen | {v}
                if len(new_chosen) > size:
                    continue
                new_frontier = (frontier | frozenset(graph.neighbors(v))) - new_chosen
                stack.append((new_chosen, new_frontier))
    return found


def _choice(rng: np.random.Generator, items: Sequence):
    """Uniform choice from a non-empty sequence using ``rng``."""
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    return items[int(rng.integers(len(items)))]
