"""Shared utilities: graph helpers, RNG handling, and input validation."""

from repro.utils.graphs import (
    average_node_degree,
    connected_random_subgraph,
    edge_list,
    ensure_graph,
    is_connected_subset,
    neighbor_swap,
    relabel_to_range,
)
from repro.utils.rng import as_generator

__all__ = [
    "as_generator",
    "average_node_degree",
    "connected_random_subgraph",
    "edge_list",
    "ensure_graph",
    "is_connected_subset",
    "neighbor_swap",
    "relabel_to_range",
]
