"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts a ``seed`` argument that
may be ``None`` (fresh entropy), an ``int`` (reproducible), or an existing
:class:`numpy.random.Generator` (shared stream).  :func:`as_generator`
normalizes all three into a ``Generator`` so downstream code never has to
branch on the type of its seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn"]


def as_generator(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an integer for a reproducible stream, or an
        existing generator which is returned unchanged (so callers can share
        one stream across components).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators.

    Children are derived through ``Generator.spawn`` when available (NumPy
    >= 1.25) and through integer re-seeding otherwise.  Independent children
    let parallel experiment arms draw from decorrelated streams while the
    parent seed still pins the whole experiment.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    try:
        return list(rng.spawn(count))
    except AttributeError:  # pragma: no cover - old numpy fallback
        seeds = rng.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
