"""Measurement-error mitigation by confusion-matrix inversion.

Each qubit's readout is characterized by a 2x2 confusion matrix
``M[observed, true]``.  The observed probability vector is the tensor
product of these maps applied to the true one; mitigation applies the
inverse maps and projects back onto the probability simplex (inverses can
produce small negative entries).
"""

from __future__ import annotations

import numpy as np

from repro.quantum.noise import NoiseModel, ReadoutError

__all__ = ["ReadoutMitigator"]


class ReadoutMitigator:
    """Per-qubit confusion-matrix inversion for ``num_qubits`` qubits."""

    def __init__(self, errors: list[ReadoutError | None]):
        self.num_qubits = len(errors)
        if self.num_qubits == 0:
            raise ValueError("need at least one qubit")
        self._inverses: list[np.ndarray | None] = []
        for error in errors:
            if error is None:
                self._inverses.append(None)
                continue
            matrix = error.confusion_matrix
            if abs(np.linalg.det(matrix)) < 1e-12:
                raise ValueError(
                    "confusion matrix is singular (50/50 readout cannot be inverted)"
                )
            self._inverses.append(np.linalg.inv(matrix))

    @classmethod
    def from_noise_model(cls, model: NoiseModel, num_qubits: int) -> "ReadoutMitigator":
        """Build from the readout entries of a :class:`NoiseModel`."""
        return cls([model.readout_error(q) for q in range(num_qubits)])

    @classmethod
    def symmetric(cls, p_flip: float, num_qubits: int) -> "ReadoutMitigator":
        """Uniform symmetric flip probability on every qubit."""
        error = ReadoutError(p_flip, p_flip)
        return cls([error] * num_qubits)

    def apply(self, probs: np.ndarray) -> np.ndarray:
        """Mitigated probability vector (clipped and renormalized)."""
        probs = np.asarray(probs, dtype=float)
        if probs.shape != (2**self.num_qubits,):
            raise ValueError(
                f"probs must have shape ({2**self.num_qubits},), got {probs.shape}"
            )
        tensor = probs.reshape((2,) * self.num_qubits)
        for qubit, inverse in enumerate(self._inverses):
            if inverse is None:
                continue
            axis = self.num_qubits - 1 - qubit
            tensor = np.moveaxis(
                np.tensordot(inverse, tensor, axes=([1], [axis])), 0, axis
            )
        flat = np.ascontiguousarray(tensor).reshape(-1)
        flat = flat.clip(min=0.0)
        total = flat.sum()
        if total <= 0:
            raise ValueError("mitigation produced an empty distribution")
        return flat / total

    def expectation_diagonal(self, probs: np.ndarray, diagonal: np.ndarray) -> float:
        """Mitigated expectation of a diagonal observable."""
        mitigated = self.apply(probs)
        diagonal = np.asarray(diagonal, dtype=float)
        if diagonal.shape != mitigated.shape:
            raise ValueError(f"diagonal shape {diagonal.shape} != {mitigated.shape}")
        return float(mitigated @ diagonal)
