"""Zero-noise extrapolation (ZNE) on the fast noisy path.

ZNE runs the same circuit at several amplified noise strengths (on hardware
via gate folding; here by scaling the noise spec) and extrapolates the
observable to the zero-noise limit [Temme, Bravyi, Gambetta 2017].

:func:`scale_noise` amplifies a :class:`~repro.qaoa.fast_sim.FastNoiseSpec`:
stochastic Pauli rates and coherent angle biases scale linearly with the
fold factor; readout error is left unscaled, since measurement is not
folded (use :mod:`repro.mitigation.readout` for that part).
"""

from __future__ import annotations

from collections.abc import Sequence

import networkx as nx
import numpy as np

from repro.qaoa.expectation import noisy_maxcut_expectation
from repro.qaoa.fast_sim import FastNoiseSpec

__all__ = ["richardson_extrapolate", "scale_noise", "zne_maxcut_expectation"]


def scale_noise(noise: FastNoiseSpec, factor: float) -> FastNoiseSpec:
    """Amplify ``noise`` by ``factor`` >= 1 (probabilities clipped at 1)."""
    if factor < 1.0:
        raise ValueError(f"fold factor must be >= 1, got {factor}")
    edge_bias = noise.edge_phase_bias
    node_bias = noise.node_mixer_bias
    return FastNoiseSpec(
        edge_error=min(1.0, noise.edge_error * factor),
        node_error=min(1.0, noise.node_error * factor),
        readout_error=noise.readout_error,
        edge_phase_bias=(
            None if edge_bias is None else tuple(b * factor for b in edge_bias)
        ),
        node_mixer_bias=(
            None if node_bias is None else tuple(b * factor for b in node_bias)
        ),
    )


def richardson_extrapolate(scales: Sequence[float], values: Sequence[float]) -> float:
    """Polynomial extrapolation of ``values(scales)`` to scale 0.

    Fits the unique degree ``len(scales) - 1`` polynomial through the
    measurements (Richardson) and evaluates it at zero.  At least two
    distinct scales are required.
    """
    scales = np.asarray(scales, dtype=float)
    values = np.asarray(values, dtype=float)
    if scales.shape != values.shape or scales.ndim != 1:
        raise ValueError("scales and values must be equal-length 1-D sequences")
    if len(scales) < 2:
        raise ValueError("need at least two noise scales to extrapolate")
    if len(set(scales.tolist())) != len(scales):
        raise ValueError("noise scales must be distinct")
    coeffs = np.polyfit(scales, values, deg=len(scales) - 1)
    return float(np.polyval(coeffs, 0.0))


def zne_maxcut_expectation(
    graph: nx.Graph,
    gammas: Sequence[float],
    betas: Sequence[float],
    noise: FastNoiseSpec,
    scales: Sequence[float] = (1.0, 2.0, 3.0),
    trajectories: int = 16,
    shots: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> tuple[float, list[float]]:
    """Noise-extrapolated QAOA expectation.

    Returns ``(extrapolated_value, per-scale raw values)``.  More
    trajectories than a plain evaluation are advisable: extrapolation
    amplifies statistical noise along with the signal.
    """
    from repro.utils.rng import as_generator

    rng = as_generator(seed)
    raw = [
        noisy_maxcut_expectation(
            graph, gammas, betas, scale_noise(noise, s),
            trajectories=trajectories, shots=shots, seed=rng,
        )
        for s in scales
    ]
    return richardson_extrapolate(scales, raw), raw
