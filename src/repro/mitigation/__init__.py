"""Error mitigation for the solution-finding step.

The Red-QAOA design (paper Fig. 4) runs the original graph only for the
final, already-optimized parameters, which makes error mitigation cheap to
apply there.  This subpackage provides the two standard techniques the
paper's discussion points to (ref. [55]):

- :mod:`repro.mitigation.zne` -- zero-noise extrapolation: evaluate the
  observable at amplified noise levels and Richardson-extrapolate to zero;
- :mod:`repro.mitigation.readout` -- measurement-error mitigation by
  inverting the per-qubit assignment confusion matrices.
"""

from repro.mitigation.readout import ReadoutMitigator
from repro.mitigation.zne import (
    richardson_extrapolate,
    scale_noise,
    zne_maxcut_expectation,
)

__all__ = [
    "ReadoutMitigator",
    "richardson_extrapolate",
    "scale_noise",
    "zne_maxcut_expectation",
]
