"""Generic evaluation metrics shared by the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["mean_squared_error", "paired_summary", "relative_improvement"]


def mean_squared_error(a: np.ndarray, b: np.ndarray) -> float:
    """Plain MSE between two equal-shape arrays (no normalization)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.mean((a - b) ** 2))


def relative_improvement(candidate: float, baseline: float) -> float:
    """``(candidate - baseline) / |baseline|`` -- Fig. 19's y-axis."""
    if baseline == 0:
        raise ValueError("baseline must be non-zero")
    return (candidate - baseline) / abs(baseline)


@dataclass(frozen=True)
class PairedSummary:
    """Distribution summary of paired comparisons (box-plot statistics)."""

    mean: float
    median: float
    q1: float
    q3: float
    minimum: float
    maximum: float
    fraction_positive: float


def paired_summary(values) -> PairedSummary:
    """Box-plot summary of a sample of relative improvements."""
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        raise ValueError("values must be non-empty")
    return PairedSummary(
        mean=float(values.mean()),
        median=float(np.median(values)),
        q1=float(np.percentile(values, 25)),
        q3=float(np.percentile(values, 75)),
        minimum=float(values.min()),
        maximum=float(values.max()),
        fraction_positive=float((values > 0).mean()),
    )
