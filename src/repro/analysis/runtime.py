"""Preprocessing-runtime analysis (paper Sec. 6.4.2, Fig. 18).

Red-QAOA's overhead is the SA reduction with its binary search over sizes,
which the paper reports scaling as ``n log n`` and amounting to ~0.1% of a
single circuit execution on ibm_sherbrooke.  This module measures the
reducer on random graphs, fits the ``a * n log n + b`` curve, and models
per-circuit device execution time for the comparison line.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.core.reduction import GraphReducer
from repro.datasets.random_graphs import random_connected_gnp
from repro.utils.rng import as_generator

__all__ = [
    "RuntimeModel",
    "fit_nlogn",
    "measure_preprocessing_times",
    "per_circuit_execution_time",
]


def measure_preprocessing_times(
    sizes,
    edge_probability: float | None = None,
    seed: int | np.random.Generator | None = 0,
    repeats: int = 1,
) -> list[tuple[int, float]]:
    """Wall-clock GraphReducer times on connected ER graphs of ``sizes``.

    ``edge_probability`` defaults per size to the larger of ``4/n`` (bounded
    average degree, matching sparse large instances) and ``1.3 ln(n)/n``
    (the Erdős–Rényi connectivity threshold, so samples stay connected).
    Returns ``[(n, seconds), ...]`` with the minimum over ``repeats`` runs.
    """
    rng = as_generator(seed)
    results: list[tuple[int, float]] = []
    for n in sizes:
        if edge_probability is not None:
            p = edge_probability
        else:
            p = min(0.5, max(4.0 / n, 1.3 * math.log(max(n, 2)) / n))
        graph = random_connected_gnp(int(n), p, seed=rng)
        best = math.inf
        for _ in range(max(1, repeats)):
            reducer = GraphReducer(seed=rng)
            start = time.perf_counter()
            reducer.reduce(graph)
            best = min(best, time.perf_counter() - start)
        results.append((int(n), best))
    return results


@dataclass(frozen=True)
class RuntimeModel:
    """Fitted ``t(n) = a * n log n + b`` with goodness of fit."""

    a: float
    b: float
    r_squared: float

    def predict(self, n: int) -> float:
        return self.a * n * math.log(max(n, 2)) + self.b


def fit_nlogn(measurements: list[tuple[int, float]]) -> RuntimeModel:
    """Least-squares fit of ``a * n log n + b`` to timing measurements."""
    if len(measurements) < 2:
        raise ValueError("need at least two measurements to fit")
    n = np.array([m[0] for m in measurements], dtype=float)
    t = np.array([m[1] for m in measurements], dtype=float)
    x = n * np.log(np.maximum(n, 2.0))
    design = np.stack([x, np.ones_like(x)], axis=1)
    coeffs, *_ = np.linalg.lstsq(design, t, rcond=None)
    predicted = design @ coeffs
    ss_res = float(((t - predicted) ** 2).sum())
    ss_tot = float(((t - t.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return RuntimeModel(a=float(coeffs[0]), b=float(coeffs[1]), r_squared=r2)


def per_circuit_execution_time(
    num_qubits: int,
    p: int = 1,
    average_degree: float = 3.0,
    shots: int = 8192,
    time_2q: float = 533e-9,
    time_1q: float = 35e-9,
    time_readout: float = 700e-9,
    overhead_per_shot: float = 400e-6,
) -> float:
    """Modeled wall-clock seconds for one QAOA circuit execution.

    Anchored so that a 10-node 1-layer circuit on ibm_sherbrooke costs
    ~4.2 s (the paper's reference number): per-shot time is circuit depth
    times gate times plus readout, plus a fixed per-shot control-system
    overhead (reset, delays) that dominates in practice.
    """
    if num_qubits < 1 or p < 1:
        raise ValueError("num_qubits and p must be >= 1")
    edges_per_layer = average_degree * num_qubits / 2.0
    depth_2q = 2.0 * edges_per_layer / max(1.0, num_qubits / 2.0)  # parallel CX layers
    per_shot = p * (depth_2q * time_2q + 2 * time_1q) + time_readout + overhead_per_shot
    return shots * per_shot
