"""Preprocessing-runtime analysis (paper Sec. 6.4.2, Fig. 18).

Red-QAOA's overhead is the SA reduction with its binary search over sizes,
which the paper reports scaling as ``n log n`` and amounting to ~0.1% of a
single circuit execution on ibm_sherbrooke.  This module measures the
reducer on random graphs, fits the ``a * n log n + b`` curve, and models
per-circuit device execution time for the comparison line.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.core.annealer import reference_simulated_annealing, simulated_annealing
from repro.core.reduction import GraphReducer
from repro.datasets.random_graphs import random_connected_gnp
from repro.utils.rng import as_generator

__all__ = [
    "RuntimeModel",
    "benchmark_graph",
    "estimate_pipeline_cost",
    "fit_nlogn",
    "measure_annealer_rate",
    "measure_lightcone_rate",
    "measure_preprocessing_times",
    "per_circuit_execution_time",
]


def benchmark_graph(n: int, seed: int | np.random.Generator | None = 0):
    """The connected ER instance the runtime benchmarks use for size ``n``.

    Edge probability is the larger of ``4/n`` (bounded average degree,
    matching sparse large instances) and ``1.3 ln(n)/n`` (the Erdős–Rényi
    connectivity threshold, so samples stay connected).
    """
    p = min(0.5, max(4.0 / n, 1.3 * math.log(max(n, 2)) / n))
    return random_connected_gnp(int(n), p, seed=seed)


def measure_preprocessing_times(
    sizes,
    edge_probability: float | None = None,
    seed: int | np.random.Generator | None = 0,
    repeats: int = 1,
    annealer: str = "incremental",
) -> list[tuple[int, float]]:
    """Wall-clock GraphReducer times on connected ER graphs of ``sizes``.

    ``edge_probability`` defaults per size as in :func:`benchmark_graph`.
    ``annealer`` selects the reducer's engine (the ``"reference"`` baseline
    exists for before/after speedup tracking).  Returns ``[(n, seconds),
    ...]`` with the minimum over ``repeats`` runs.
    """
    rng = as_generator(seed)
    results: list[tuple[int, float]] = []
    for n in sizes:
        if edge_probability is not None:
            p = edge_probability
            graph = random_connected_gnp(int(n), p, seed=rng)
        else:
            graph = benchmark_graph(int(n), seed=rng)
        best = math.inf
        for _ in range(max(1, repeats)):
            reducer = GraphReducer(seed=rng, annealer=annealer)
            start = time.perf_counter()
            reducer.reduce(graph)
            best = min(best, time.perf_counter() - start)
        results.append((int(n), best))
    return results


def measure_annealer_rate(
    graph,
    keep_fraction: float = 0.7,
    max_steps: int = 1000,
    seed: int | np.random.Generator | None = 0,
    annealer: str = "incremental",
) -> dict:
    """Annealing steps per second on ``graph`` for one engine.

    Runs :func:`~repro.core.annealer.simulated_annealing` (or the retained
    reference) at ``k = keep_fraction * n`` with a fixed step budget and a
    slow constant cooling, so the run is step-bound rather than
    freeze-bound and the rate is comparable across engines.
    """
    anneal = (
        simulated_annealing if annealer == "incremental" else reference_simulated_annealing
    )
    k = max(2, int(keep_fraction * graph.number_of_nodes()))
    start = time.perf_counter()
    result = anneal(graph, k, cooling="constant", seed=seed, max_steps=max_steps)
    elapsed = time.perf_counter() - start
    return {
        "steps": result.steps,
        "seconds": elapsed,
        "steps_per_sec": result.steps / elapsed if elapsed > 0 else math.inf,
    }


def measure_lightcone_rate(
    graph,
    p: int,
    num_points: int,
    seed: int | np.random.Generator | None = 0,
    engine: str = "plan",
    max_qubits: int = 20,
    parameter_sets: tuple[np.ndarray, np.ndarray] | None = None,
) -> dict:
    """Lightcone landscape points per second for one engine.

    ``engine="plan"`` builds a :class:`~repro.qaoa.lightcone.LightconePlan`
    once and evaluates the whole batch; ``engine="percall"`` runs the
    retained :func:`~repro.qaoa.lightcone.lightcone_expectation_reference`
    point by point (re-discovering structure each time, as the pre-plan
    code did).  ``parameter_sets`` overrides the sampled ``(gammas,
    betas)`` so different engines can be timed on identical points.
    Returns points/sec plus the values for cross-checking.
    """
    from repro.qaoa.landscape import sample_parameter_sets
    from repro.qaoa.lightcone import LightconePlan, lightcone_expectation_reference

    if parameter_sets is None:
        gammas, betas = sample_parameter_sets(p, num_points, seed=seed)
    else:
        gammas, betas = parameter_sets
        gammas = np.asarray(gammas, dtype=float)[:num_points]
        betas = np.asarray(betas, dtype=float)[:num_points]
    num_points = len(gammas)  # the count actually evaluated
    start = time.perf_counter()
    if engine == "plan":
        plan = LightconePlan.build(graph, p, max_qubits=max_qubits)
        values = plan.evaluate_batch(gammas, betas)
    elif engine == "percall":
        values = np.array(
            [
                lightcone_expectation_reference(graph, list(g), list(b), max_qubits=max_qubits)
                for g, b in zip(gammas, betas)
            ]
        )
    else:
        raise ValueError(f"engine must be 'plan' or 'percall', got {engine!r}")
    elapsed = time.perf_counter() - start
    return {
        "points": num_points,
        "seconds": elapsed,
        "points_per_sec": num_points / elapsed if elapsed > 0 else math.inf,
        "values": values,
    }


def estimate_pipeline_cost(
    num_qubits: int,
    p: int = 1,
    restarts: int = 3,
    maxiter: int = 40,
    finetune_maxiter: int = 0,
    keep_fraction: float = 0.7,
    exact_limit: int = 20,
) -> float:
    """Modeled relative cost of one reduce -> optimize -> transfer job.

    The batch scheduler's ordering key (cheap jobs stream results first):
    a statevector point costs ``~ p * n * 2**n`` work up to ``exact_limit``
    qubits, beyond which lightcone classes bound the per-point cost at
    ``~ p * n * 2**exact_limit``; the optimizer spends
    ``restarts * maxiter`` points on the distilled instance (modeled at
    ``keep_fraction * n`` qubits, the reducer's typical output) and
    ``finetune_maxiter + 2`` on the full one (transfer evaluation plus
    readout), and the SA reduction adds an ``n log n`` term scaled to be
    negligible next to any simulation.  Units are arbitrary but
    monotone in wall-clock on one engine; calibrate against
    :func:`measure_lightcone_rate` / :func:`measure_annealer_rate` when
    real seconds are needed.
    """
    if num_qubits < 1 or p < 1:
        raise ValueError("num_qubits and p must be >= 1")

    def point_cost(n: int) -> float:
        return p * n * 2.0 ** min(n, exact_limit)

    reduced = max(3, math.ceil(keep_fraction * num_qubits))
    reduced = min(reduced, num_qubits)
    optimize = restarts * maxiter * point_cost(reduced)
    transfer = (finetune_maxiter + 2) * point_cost(num_qubits)
    anneal = num_qubits * math.log(max(num_qubits, 2))
    return optimize + transfer + anneal


@dataclass(frozen=True)
class RuntimeModel:
    """Fitted ``t(n) = a * n log n + b`` with goodness of fit."""

    a: float
    b: float
    r_squared: float

    def predict(self, n: int) -> float:
        return self.a * n * math.log(max(n, 2)) + self.b


def fit_nlogn(measurements: list[tuple[int, float]]) -> RuntimeModel:
    """Least-squares fit of ``a * n log n + b`` to timing measurements."""
    if len(measurements) < 2:
        raise ValueError("need at least two measurements to fit")
    n = np.array([m[0] for m in measurements], dtype=float)
    t = np.array([m[1] for m in measurements], dtype=float)
    x = n * np.log(np.maximum(n, 2.0))
    design = np.stack([x, np.ones_like(x)], axis=1)
    coeffs, *_ = np.linalg.lstsq(design, t, rcond=None)
    predicted = design @ coeffs
    ss_res = float(((t - predicted) ** 2).sum())
    ss_tot = float(((t - t.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return RuntimeModel(a=float(coeffs[0]), b=float(coeffs[1]), r_squared=r2)


def per_circuit_execution_time(
    num_qubits: int,
    p: int = 1,
    average_degree: float = 3.0,
    shots: int = 8192,
    time_2q: float = 533e-9,
    time_1q: float = 35e-9,
    time_readout: float = 700e-9,
    overhead_per_shot: float = 400e-6,
) -> float:
    """Modeled wall-clock seconds for one QAOA circuit execution.

    Anchored so that a 10-node 1-layer circuit on ibm_sherbrooke costs
    ~4.2 s (the paper's reference number): per-shot time is circuit depth
    times gate times plus readout, plus a fixed per-shot control-system
    overhead (reset, delays) that dominates in practice.
    """
    if num_qubits < 1 or p < 1:
        raise ValueError("num_qubits and p must be >= 1")
    edges_per_layer = average_degree * num_qubits / 2.0
    depth_2q = 2.0 * edges_per_layer / max(1.0, num_qubits / 2.0)  # parallel CX layers
    per_shot = p * (depth_2q * time_2q + 2 * time_1q) + time_readout + overhead_per_shot
    return shots * per_shot
