"""Bootstrap significance tooling for benchmark comparisons.

The reproduction's claims are comparative ("Red-QAOA's MSE is lower than
the baseline's"); with laptop-sized samples those comparisons deserve
uncertainty estimates.  This module provides percentile-bootstrap
confidence intervals for means and a paired bootstrap win-probability test.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["BootstrapInterval", "bootstrap_mean_ci", "paired_bootstrap_test"]


@dataclass(frozen=True)
class BootstrapInterval:
    """A percentile bootstrap confidence interval for a mean."""

    mean: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_mean_ci(
    values,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int | np.random.Generator | None = 0,
) -> BootstrapInterval:
    """Percentile bootstrap CI for the mean of ``values``."""
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        raise ValueError("values must be non-empty")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 100:
        raise ValueError(f"resamples must be >= 100, got {resamples}")
    rng = as_generator(seed)
    indices = rng.integers(0, values.size, size=(resamples, values.size))
    means = values[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapInterval(
        mean=float(values.mean()),
        low=float(np.quantile(means, alpha)),
        high=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
    )


def paired_bootstrap_test(
    candidate,
    baseline,
    resamples: int = 2000,
    seed: int | np.random.Generator | None = 0,
) -> float:
    """Probability that ``mean(candidate - baseline) > 0`` under resampling.

    ``candidate`` and ``baseline`` are paired measurements (same instances).
    A value near 1 means the candidate reliably beats the baseline; near 0,
    reliably loses; near 0.5, a coin flip.
    """
    candidate = np.asarray(list(candidate), dtype=float)
    baseline = np.asarray(list(baseline), dtype=float)
    if candidate.shape != baseline.shape or candidate.ndim != 1:
        raise ValueError("candidate and baseline must be equal-length 1-D sequences")
    if candidate.size == 0:
        raise ValueError("need at least one pair")
    diffs = candidate - baseline
    rng = as_generator(seed)
    indices = rng.integers(0, diffs.size, size=(resamples, diffs.size))
    means = diffs[indices].mean(axis=1)
    return float((means > 0).mean())
