"""Evaluation machinery: metrics, runtime model, throughput model."""

from repro.analysis.metrics import (
    mean_squared_error,
    paired_summary,
    relative_improvement,
)
from repro.analysis.significance import (
    BootstrapInterval,
    bootstrap_mean_ci,
    paired_bootstrap_test,
)
from repro.analysis.runtime import (
    RuntimeModel,
    fit_nlogn,
    measure_preprocessing_times,
    per_circuit_execution_time,
)
from repro.analysis.throughput import (
    ThroughputReport,
    circuit_execution_time,
    device_capacity,
    relative_throughput,
)

__all__ = [
    "BootstrapInterval",
    "RuntimeModel",
    "bootstrap_mean_ci",
    "paired_bootstrap_test",
    "ThroughputReport",
    "circuit_execution_time",
    "device_capacity",
    "fit_nlogn",
    "mean_squared_error",
    "measure_preprocessing_times",
    "paired_summary",
    "per_circuit_execution_time",
    "relative_improvement",
    "relative_throughput",
]
