"""Device-throughput model (paper Sec. 6.9, Fig. 25).

Large devices run several QAOA circuits concurrently (multi-programming,
ref. [9]); the number of concurrent slots is the device size divided by
the circuit width.  Red-QAOA's reduced circuits occupy fewer qubits *and*
finish faster, so system throughput improves by

    relative = (slots(reduced) / t(reduced)) / (slots(baseline) / t(baseline))

averaged over a dataset.  The paper reports ~1.85x (AIDS), ~2.1x (Linux),
and ~1.4x (IMDb) across 27/33/65/127-qubit devices.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.quantum.backends import FakeBackend

__all__ = [
    "ThroughputReport",
    "circuit_execution_time",
    "device_capacity",
    "relative_throughput",
]


def device_capacity(backend: FakeBackend, circuit_qubits: int) -> int:
    """Concurrent circuit slots on ``backend`` for a given circuit width.

    A circuit wider than the device gets capacity 0 (it cannot run).
    """
    if circuit_qubits < 1:
        raise ValueError(f"circuit_qubits must be >= 1, got {circuit_qubits}")
    return backend.num_qubits // circuit_qubits


def circuit_execution_time(
    backend: FakeBackend,
    graph: nx.Graph,
    p: int = 1,
    swap_overhead: float = 1.5,
) -> float:
    """Modeled per-shot execution time of the QAOA circuit for ``graph``.

    Depth model: each QAOA layer serializes the edge interactions into
    roughly ``2 m / n`` two-qubit layers (edge-coloring bound) times the
    routing overhead, plus one mixer layer; readout closes the shot.
    """
    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    if n < 1:
        raise ValueError("graph must have nodes")
    two_qubit_layers = p * swap_overhead * 2.0 * (2.0 * m / max(n, 1))
    one_qubit_layers = p + 1  # mixers plus state preparation
    return (
        two_qubit_layers * backend.time_2q
        + one_qubit_layers * backend.time_1q
        + backend.time_readout
    )


@dataclass(frozen=True)
class ThroughputReport:
    """Throughput comparison for one dataset on one device."""

    backend_name: str
    dataset_name: str
    baseline_rate: float
    reduced_rate: float

    @property
    def relative(self) -> float:
        return self.reduced_rate / self.baseline_rate


def relative_throughput(
    backend: FakeBackend,
    pairs: list[tuple[nx.Graph, nx.Graph]],
    dataset_name: str = "",
    p: int = 1,
) -> ThroughputReport:
    """Aggregate throughput gain over ``(original, reduced)`` graph pairs.

    Rates are jobs-per-second summed over the dataset: each graph
    contributes ``capacity / time``; graphs too wide for the device
    contribute zero (they simply cannot run there).
    """
    if not pairs:
        raise ValueError("pairs must be non-empty")
    baseline_rate = 0.0
    reduced_rate = 0.0
    for original, reduced in pairs:
        cap_base = device_capacity(backend, original.number_of_nodes())
        cap_red = device_capacity(backend, reduced.number_of_nodes())
        if cap_base:
            baseline_rate += cap_base / circuit_execution_time(backend, original, p)
        if cap_red:
            reduced_rate += cap_red / circuit_execution_time(backend, reduced, p)
    if baseline_rate == 0.0:
        raise ValueError("no original graph fits on the device")
    return ThroughputReport(
        backend_name=backend.name,
        dataset_name=dataset_name,
        baseline_rate=baseline_rate,
        reduced_rate=reduced_rate,
    )
