"""The parameter-transfer baseline from prior work [Galda+21, Shaydulin+23].

Prior work transfers optimal QAOA parameters between *random regular*
graphs of matching degree parity.  The paper's comparison (Sec. 5.6,
Fig. 21) stresses that precondition: start from a regular base graph,
perturb 10% of edges so the graph becomes slightly irregular, then compare

- **parameter transfer**: a smaller random regular *donor* graph with the
  base graph's degree (and the Red-QAOA graph's node count for fairness);
- **Red-QAOA**: the SA-distilled graph.

Each method is scored by the MSE between the original graph's ideal
landscape and its surrogate's (:func:`transfer_landscape_mse`).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.qaoa.landscape import compute_landscape, landscape_mse
from repro.utils.graphs import ensure_graph, relabel_to_range
from repro.utils.rng import as_generator

__all__ = [
    "four_ary_tree_graph",
    "perturb_graph",
    "random_regular_donor",
    "star_graph",
    "transfer_landscape_mse",
]


def perturb_graph(
    graph: nx.Graph,
    fraction: float = 0.1,
    seed: int | np.random.Generator | None = None,
) -> nx.Graph:
    """Rewire ``fraction`` of edges: remove that many, add as many new ones.

    This is the paper's protocol for making regular base graphs "slightly
    irregular while retaining similarities" (Sec. 5.6).  Connectivity is
    preserved: a removal that would disconnect the graph is skipped.
    """
    ensure_graph(graph)
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rng = as_generator(seed)
    result = nx.Graph(graph)
    num_rewire = int(round(fraction * result.number_of_edges()))
    removed = 0
    edges = list(result.edges())
    rng.shuffle(edges)
    for edge in edges:
        if removed >= num_rewire:
            break
        result.remove_edge(*edge)
        if nx.is_connected(result):
            removed += 1
        else:
            result.add_edge(*edge)
    candidates = [
        (u, v)
        for u in result.nodes()
        for v in result.nodes()
        if u < v and not result.has_edge(u, v)
    ]
    rng.shuffle(candidates)
    for u, v in candidates[:removed]:
        result.add_edge(u, v)
    return result


def random_regular_donor(
    degree: int,
    num_nodes: int,
    seed: int | np.random.Generator | None = None,
    max_attempts: int = 50,
) -> nx.Graph:
    """A connected random ``degree``-regular graph on ``num_nodes`` nodes.

    ``num_nodes`` is bumped by one when ``degree * num_nodes`` is odd (a
    regular graph requires an even degree sum), mirroring how the paper
    builds donors "with a similar node count".
    """
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    if num_nodes <= degree:
        num_nodes = degree + 1
    if (degree * num_nodes) % 2 == 1:
        num_nodes += 1
    rng = as_generator(seed)
    for _ in range(max_attempts):
        graph = nx.random_regular_graph(degree, num_nodes, seed=rng)
        if nx.is_connected(graph):
            return graph
    raise RuntimeError(
        f"failed to draw a connected {degree}-regular graph on {num_nodes} nodes"
    )


def star_graph(num_nodes: int) -> nx.Graph:
    """The ``num_nodes``-node star (one hub), Fig. 21's Star_30 family."""
    if num_nodes < 2:
        raise ValueError(f"num_nodes must be >= 2, got {num_nodes}")
    return nx.star_graph(num_nodes - 1)


def four_ary_tree_graph(num_nodes: int) -> nx.Graph:
    """A complete 4-ary tree truncated to ``num_nodes`` nodes (Fig. 21)."""
    if num_nodes < 2:
        raise ValueError(f"num_nodes must be >= 2, got {num_nodes}")
    graph = nx.full_rary_tree(4, num_nodes)
    return graph


def transfer_landscape_mse(
    original: nx.Graph,
    surrogate: nx.Graph,
    width: int = 24,
) -> float:
    """MSE between the ideal p=1 landscapes of ``original`` and ``surrogate``.

    The y-axis of Fig. 21: low values mean the surrogate's optimum
    transfers well.  Both graphs are evaluated exactly (the analytic p=1
    engine covers the 60-node cases).
    """
    ensure_graph(original)
    ensure_graph(surrogate)
    reference = compute_landscape(relabel_to_range(original), width=width).values
    candidate = compute_landscape(relabel_to_range(surrogate), width=width).values
    return landscape_mse(reference, candidate)
