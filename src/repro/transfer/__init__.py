"""Parameter transfer: the prior-work baseline and warm-start lookup.

``parameter_transfer`` implements the random-regular-donor baseline the
paper compares against (Secs. 5.6, 6.6, 7.1); ``lookup`` implements the
complementary warm-start library Sec. 7.2 discusses.
"""

from repro.transfer.lookup import ParameterLookup
from repro.transfer.parameter_transfer import (
    four_ary_tree_graph,
    perturb_graph,
    random_regular_donor,
    star_graph,
    transfer_landscape_mse,
)

__all__ = [
    "ParameterLookup",
    "four_ary_tree_graph",
    "perturb_graph",
    "random_regular_donor",
    "star_graph",
    "transfer_landscape_mse",
]
