"""Warm-start parameter lookup from a precomputed donor library.

Sec. 7.2 of the paper positions warm-start techniques (and the authors' own
directed-restart/graph-lookup companion work [21]) as complementary to
Red-QAOA.  This module implements the lookup side: a small library of
optimal p=1 parameters for random regular graphs, indexed by node degree.
Given a new graph, :meth:`ParameterLookup.warm_start` returns the library
entry whose degree is closest to the graph's Average Node Degree -- a good
initialization because landscapes concentrate by AND (the same fact
Red-QAOA's reducer exploits).

Entries are computed lazily with the analytic p=1 engine (grid search +
COBYLA polish) and cached per instance.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.qaoa.analytic import maxcut_p1_expectation
from repro.qaoa.optimizer import cobyla_optimize, grid_search
from repro.utils.graphs import average_node_degree, ensure_graph
from repro.utils.rng import as_generator

__all__ = ["ParameterLookup"]

_MIN_DEGREE = 1
_MAX_DEGREE = 12


class ParameterLookup:
    """Degree-indexed library of optimal p=1 QAOA parameters.

    Parameters
    ----------
    donor_nodes:
        Size of the random regular donor graphs used to build entries.
    grid_width / polish_maxiter:
        Budget for optimizing each entry (grid scan then COBYLA polish).
    """

    def __init__(
        self,
        donor_nodes: int = 16,
        grid_width: int = 16,
        polish_maxiter: int = 40,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if donor_nodes < 4:
            raise ValueError(f"donor_nodes must be >= 4, got {donor_nodes}")
        self.donor_nodes = donor_nodes
        self.grid_width = grid_width
        self.polish_maxiter = polish_maxiter
        self._rng = as_generator(seed)
        self._table: dict[int, tuple[float, float]] = {}

    def entry(self, degree: int) -> tuple[float, float]:
        """Optimal (gamma, beta) for random ``degree``-regular graphs."""
        if not _MIN_DEGREE <= degree <= _MAX_DEGREE:
            raise ValueError(
                f"degree must be in [{_MIN_DEGREE}, {_MAX_DEGREE}], got {degree}"
            )
        if degree not in self._table:
            self._table[degree] = self._optimize_donor(degree)
        return self._table[degree]

    def warm_start(self, graph: nx.Graph) -> tuple[float, float]:
        """(gamma, beta) initialization for ``graph`` by AND matching."""
        ensure_graph(graph)
        if graph.number_of_edges() == 0:
            raise ValueError("graph must have edges")
        degree = int(round(average_node_degree(graph)))
        degree = min(max(degree, _MIN_DEGREE), _MAX_DEGREE)
        return self.entry(degree)

    def warm_start_vector(self, graph: nx.Graph, p: int = 1) -> np.ndarray:
        """Initial point ``[gammas..., betas...]`` for the optimizer.

        For ``p > 1`` the p=1 point is tiled with a linear ramp, the standard
        heuristic for extending shallow optima to deeper circuits.
        """
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        gamma, beta = self.warm_start(graph)
        if p == 1:
            return np.array([gamma, beta])
        ramp = np.linspace(0.75, 1.25, p)
        gammas = gamma * ramp
        betas = beta * ramp[::-1]
        return np.concatenate([gammas, betas])

    # -- internals ----------------------------------------------------------

    def _optimize_donor(self, degree: int) -> tuple[float, float]:
        donor = self._donor_graph(degree)
        fn = lambda gammas, betas: maxcut_p1_expectation(
            donor, float(gammas[0]), float(betas[0])
        )
        (gamma, beta), _, _ = grid_search(fn, width=self.grid_width)
        trace = cobyla_optimize(
            fn,
            p=1,
            initial=np.array([gamma, beta]),
            maxiter=self.polish_maxiter,
            rhobeg=0.15,
            seed=self._rng,
        )
        gammas, betas = trace.best_parameters
        return float(gammas[0]), float(betas[0])

    def _donor_graph(self, degree: int) -> nx.Graph:
        nodes = max(self.donor_nodes, degree + 1)
        if (degree * nodes) % 2 == 1:
            nodes += 1
        if degree == 1:
            # 1-regular graphs are perfect matchings; one edge suffices.
            return nx.Graph([(0, 1)])
        for _ in range(50):
            graph = nx.random_regular_graph(degree, nodes, seed=self._rng)
            if nx.is_connected(graph):
                return graph
        raise RuntimeError(f"could not draw a connected {degree}-regular donor")
