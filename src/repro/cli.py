"""Command-line interface mirroring the paper artifact's experiment scripts.

The artifact appendix (paper Sec. A) ships three entry points; this module
reproduces them as subcommands of ``red-qaoa`` (or ``python -m repro.cli``):

- ``mse-noisy``  -- Sec. 6.1 / ``mse_noisy.py``: noisy-landscape MSE of the
  baseline and Red-QAOA against the ideal baseline, for an n-node graph;
- ``mse-ideal``  -- Secs. 6.2-6.3 / ``mse_ideal.py``: reduction ratios and
  ideal MSE over a benchmark dataset;
- ``end-to-end`` -- Sec. 6.4.1 / ``end_to_end.py``: Red-QAOA vs baseline
  optimization quality across restarts.

Each subcommand prints the numbers that map onto the corresponding figures.

``sweep`` goes beyond the artifact: it prices a dense random parameter
sweep on a large sparse graph through the cached
:class:`~repro.qaoa.lightcone.LightconePlan` (structure discovered once,
every point batched), printing the class/dedup statistics and the
points-per-second the plan achieves.

``solve`` runs the full reduce -> optimize -> transfer -> sample pipeline
on any workload of the Ising/QUBO problem layer
(:mod:`repro.problems`): ``--problem {maxcut,mis,vertex-cover,partition,
sk,qubo}``, with a ``--qubo-file`` escape hatch for user-supplied
matrices.

``batch`` runs a whole YAML/JSON job manifest (or a generated dataset
suite) through the :mod:`repro.service` scheduler: duplicates and
isomorphic instances are deduplicated, reductions and compiled lightcone
plans are shared, and a ``--store`` file makes the campaign resumable
across process restarts with zero recomputation.

``serve`` keeps a :mod:`repro.serve` daemon alive on a unix socket:
clients submit manifests asynchronously and poll tickets while a
deterministic worker pool (``--workers N``) executes fingerprint-sharded
jobs behind the store.  ``submit`` is the matching client: it sends a
manifest (or generated suite) to a running daemon and waits for -- or
just tickets -- the results.  ``batch --workers N`` runs the same worker
pool in-process, without a daemon.

``solve``/``sweep``/``batch`` accept ``--json`` for machine-readable
output, and ``red-qaoa --version`` reports the package version -- the
hooks batch tooling builds on.

Observability (:mod:`repro.obs`) rides along everywhere: ``--trace FILE``
on ``solve``/``sweep``/``batch``/``serve`` appends per-stage span trees
(plus a final metrics snapshot) to a JSONL trace file, ``red-qaoa trace
summarize FILE`` breaks a trace down per stage with coverage, critical
path, and cache hit rates, ``red-qaoa status --socket S`` asks a running
daemon for its queue/worker/metrics state (``--prometheus`` prints the
scrapable text format), and ``serve --log-level/--log-json`` streams
structured daemon events to stderr.  All of it is a pure side channel:
traced runs are bit-identical to untraced ones.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from contextlib import contextmanager

import numpy as np

__all__ = ["main"]


@contextmanager
def _tracing(path):
    """Enable span tracing to ``path`` for the block (no-op when None).

    On exit the process-wide metrics snapshot is appended to the trace so
    ``red-qaoa trace summarize`` can render its cache table, and the
    global tracer is uninstalled.
    """
    if path is None:
        yield None
        return
    from repro.obs.metrics import REGISTRY
    from repro.obs.trace import configure_tracing, disable_tracing

    tracer = configure_tracing(path)
    try:
        yield tracer
    finally:
        tracer.write_metrics(REGISTRY.snapshot())
        disable_tracing()


def _add_weight_options(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--weighted", action="store_true",
        help="attach random edge weights to every instance (weighted MaxCut)",
    )
    command.add_argument(
        "--weight-dist", default="uniform",
        choices=("uniform", "gaussian", "spin"),
        help="weight distribution used with --weighted (spin = +/-1 Ising)",
    )


def _maybe_weight(graph, args: argparse.Namespace, seed: int):
    """Apply --weighted/--weight-dist to one generated or loaded graph."""
    if not getattr(args, "weighted", False):
        return graph
    from repro.datasets import attach_weights

    return attach_weights(graph, args.weight_dist, seed=seed)


def _build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="red-qaoa",
        description="Red-QAOA reproduction experiments (ASPLOS 2024)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    noisy = sub.add_parser("mse-noisy", help="Sec. 6.1: noisy landscape MSE")
    noisy.add_argument("-n", "--nodes", type=int, default=10,
                       help="number of nodes (paper uses 7-14)")
    noisy.add_argument("--width", type=int, default=12,
                       help="landscape grid width (paper default 32)")
    noisy.add_argument("--shots", type=int, default=2048,
                       help="shots per landscape point (paper default 8192)")
    noisy.add_argument("--device", default="toronto", help="fake backend name")
    noisy.add_argument("--trajectories", type=int, default=4)
    noisy.add_argument("--seed", type=int, default=0)
    _add_weight_options(noisy)

    ideal = sub.add_parser("mse-ideal", help="Secs. 6.2-6.3: ideal MSE per dataset")
    ideal.add_argument("--graph-set", default="aids",
                       choices=("aids", "linux", "imdb", "random",
                                "weighted-uniform", "weighted-gaussian", "spinglass"))
    ideal.add_argument("--num-graphs", type=int, default=10)
    ideal.add_argument("--p", type=int, default=1, help="QAOA layers")
    ideal.add_argument("--num-points", type=int, default=512,
                       help="random parameter sets (paper default 1024)")
    ideal.add_argument("--min-nodes", type=int, default=0)
    ideal.add_argument("--max-nodes", type=int, default=10)
    ideal.add_argument("--seed", type=int, default=0)
    _add_weight_options(ideal)

    e2e = sub.add_parser("end-to-end", help="Sec. 6.4.1: optimization quality")
    e2e.add_argument("--p", type=int, default=1, help="QAOA layers")
    e2e.add_argument("--num-graphs", type=int, default=5,
                     help="test graphs (paper default 100)")
    e2e.add_argument("--num-nodes", type=int, default=10,
                     help="graph size (paper default 30; 10 suggested for CPUs)")
    e2e.add_argument("--restarts", type=int, default=5)
    e2e.add_argument("--maxiter", type=int, default=40)
    e2e.add_argument("--seed", type=int, default=0)
    _add_weight_options(e2e)

    sweep = sub.add_parser(
        "sweep",
        help="dense parameter sweep on a large sparse graph via the lightcone plan",
    )
    sweep.add_argument("-n", "--nodes", type=int, default=64,
                       help="number of nodes (lightcone handles hundreds)")
    sweep.add_argument("--degree", type=int, default=3,
                       help="regular-graph degree (keeps lightcones small)")
    sweep.add_argument("--p", type=int, default=2, help="QAOA layers")
    sweep.add_argument("--num-points", type=int, default=384,
                       help="random parameter sets to evaluate")
    sweep.add_argument("--max-qubits", type=int, default=20,
                       help="per-lightcone qubit cap")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--json", action="store_true",
                       help="emit one JSON object instead of text")
    sweep.add_argument("--trace", default=None, metavar="FILE",
                       help="append span traces (JSONL) to FILE; results are "
                            "bit-identical with or without")
    _add_weight_options(sweep)

    solve = sub.add_parser(
        "solve",
        help="reduce -> optimize -> transfer -> sample on any Ising/QUBO workload",
    )
    solve.add_argument("--problem", default="maxcut",
                       choices=("maxcut", "mis", "vertex-cover", "partition",
                                "sk", "qubo"),
                       help="workload encoding from repro.problems")
    solve.add_argument("-n", "--nodes", type=int, default=18,
                       help="problem size (qubits; readout and exact best-value "
                            "need n <= repro.problems.MAX_DENSE_QUBITS)")
    solve.add_argument("--p", type=int, default=1, help="QAOA layers")
    solve.add_argument("--edge-prob", type=float, default=0.35,
                       help="G(n, p) density for graph-structured problems")
    solve.add_argument("--penalty", type=float, default=2.0,
                       help="constraint penalty for mis / vertex-cover (> 1)")
    solve.add_argument("--qubo-density", type=float, default=0.5,
                       help="off-diagonal fill of the random QUBO")
    solve.add_argument("--qubo-file", default=None,
                       help="load the QUBO matrix from a text file "
                            "(numpy.loadtxt format) instead of sampling one")
    solve.add_argument("--restarts", type=int, default=3)
    solve.add_argument("--maxiter", type=int, default=40)
    solve.add_argument("--finetune-maxiter", type=int, default=0,
                       help="iterations on the full problem (0 = pure transfer)")
    solve.add_argument("--shots", type=int, default=1024,
                       help="readout samples from the final state")
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--json", action="store_true",
                       help="emit one JSON object instead of text")
    solve.add_argument("--trace", default=None, metavar="FILE",
                       help="append span traces (JSONL) to FILE; results are "
                            "bit-identical with or without")
    _add_weight_options(solve)

    from repro.datasets.problems import PROBLEM_KINDS

    batch = sub.add_parser(
        "batch",
        help="run a YAML/JSON job manifest through the batch scheduler",
    )
    batch.add_argument("manifest", nargs="?", default=None,
                       help="manifest file (YAML or JSON); omit with --suite")
    batch.add_argument("--suite", default=None, choices=PROBLEM_KINDS,
                       help="generate the manifest: a dataset suite of this workload")
    batch.add_argument("--count", type=int, default=8,
                       help="suite size (with --suite)")
    batch.add_argument("-n", "--nodes", type=int, default=12,
                       help="suite instance size (with --suite)")
    batch.add_argument("--edge-prob", type=float, default=0.35,
                       help="G(n, p) density for graph-structured suites")
    batch.add_argument("--weight-dist", default=None,
                       choices=("uniform", "gaussian", "spin"),
                       help="edge-weight / coupling distribution for maxcut or sk suites")
    batch.add_argument("--penalty", type=float, default=2.0,
                       help="constraint penalty for mis / vertex-cover suites")
    batch.add_argument("--qubo-density", type=float, default=0.5,
                       help="off-diagonal fill for qubo suites")
    batch.add_argument("--p", type=int, default=1, help="QAOA layers (suite default)")
    batch.add_argument("--restarts", type=int, default=3)
    batch.add_argument("--maxiter", type=int, default=40)
    batch.add_argument("--finetune-maxiter", type=int, default=0)
    batch.add_argument("--shots", type=int, default=1024)
    batch.add_argument("--seed", type=int, default=0,
                       help="first suite seed (job i uses seed + i)")
    batch.add_argument("--store", default=None,
                       help="persistent JSONL result store; re-running against it "
                            "recomputes nothing")
    batch.add_argument("--report", default=None,
                       help="write the full JSON report to this file")
    batch.add_argument("--reuse", default="exact",
                       choices=("exact", "cross-instance"),
                       help="reduction sharing: exact (bit-identical) or "
                            "cross-instance (AND-bucket bank, approximate)")
    batch.add_argument("--workers", type=int, default=1,
                       help="worker processes for execution (results are "
                            "bit-identical for any worker count)")
    batch.add_argument("--pool", default=None, choices=("inline", "process"),
                       help="force the worker pool kind (default: inline for "
                            "--workers 1, process otherwise)")
    batch.add_argument("--json", action="store_true",
                       help="emit the full JSON report instead of text")
    batch.add_argument("--trace", default=None, metavar="FILE",
                       help="append span traces (JSONL) to FILE; results are "
                            "bit-identical with or without")

    serve = sub.add_parser(
        "serve",
        help="run the sharded job daemon on a unix socket",
    )
    serve.add_argument("--socket", required=True,
                       help="unix socket path to listen on")
    serve.add_argument("--store", default=None,
                       help="persistent JSONL result store shared by all submissions")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 executes inline in the daemon)")
    serve.add_argument("--high-water", type=int, default=1024,
                       help="queue depth beyond which submissions are rejected "
                            "with a retry-after hint")
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="attempts (failures or worker crashes) before a job "
                            "is parked as a dead letter")
    serve.add_argument("--shard-prefix", type=int, default=1,
                       help="fingerprint hex-prefix length defining the shards "
                            "(1 = 16 shards)")
    serve.add_argument("--trace", default=None, metavar="FILE",
                       help="append one span tree per completed job (JSONL) to "
                            "FILE; a pure side channel")
    serve.add_argument("--log-level", default="warning",
                       choices=("debug", "info", "warning", "error"),
                       help="stderr event-log threshold (default: warning)")
    serve.add_argument("--log-json", action="store_true",
                       help="emit log events as NDJSON instead of text lines")
    serve.add_argument("--log-file", default=None, metavar="FILE",
                       help="write log events (NDJSON) to FILE with size-capped "
                            "rotation instead of stderr")
    serve.add_argument("--log-max-bytes", type=int, default=10_000_000,
                       help="rotate --log-file past this size (default: 10MB)")
    serve.add_argument("--history", default=None, metavar="FILE",
                       help="flight recorder: append periodic metrics snapshots "
                            "to a rotating JSONL ring at FILE")
    serve.add_argument("--history-interval", type=float, default=5.0,
                       help="seconds between flight-recorder snapshots")
    serve.add_argument("--stuck-after", type=float, default=300.0,
                       help="health watchdog: a claimed shard with no result for "
                            "this many seconds is flagged stuck")
    serve.add_argument("--stuck-requeue", action="store_true",
                       help="let the watchdog kill the worker holding a stuck "
                            "shard so the crash path requeues it")
    serve.add_argument("--health-window", type=float, default=60.0,
                       help="seconds a crash/requeue/dead-letter keeps the "
                            "health verdict degraded")

    submit = sub.add_parser(
        "submit",
        help="submit a manifest to a running serve daemon",
    )
    submit.add_argument("manifest", nargs="?", default=None,
                        help="manifest file (YAML or JSON); omit with --suite")
    submit.add_argument("--socket", required=True,
                        help="unix socket path of the daemon")
    submit.add_argument("--suite", default=None, choices=PROBLEM_KINDS,
                        help="generate the manifest: a dataset suite of this workload")
    submit.add_argument("--count", type=int, default=8,
                        help="suite size (with --suite)")
    submit.add_argument("-n", "--nodes", type=int, default=12,
                        help="suite instance size (with --suite)")
    submit.add_argument("--edge-prob", type=float, default=0.35,
                        help="G(n, p) density for graph-structured suites")
    submit.add_argument("--weight-dist", default=None,
                        choices=("uniform", "gaussian", "spin"),
                        help="edge-weight / coupling distribution for maxcut or sk suites")
    submit.add_argument("--penalty", type=float, default=2.0,
                        help="constraint penalty for mis / vertex-cover suites")
    submit.add_argument("--qubo-density", type=float, default=0.5,
                        help="off-diagonal fill for qubo suites")
    submit.add_argument("--p", type=int, default=1, help="QAOA layers (suite default)")
    submit.add_argument("--restarts", type=int, default=3)
    submit.add_argument("--maxiter", type=int, default=40)
    submit.add_argument("--finetune-maxiter", type=int, default=0)
    submit.add_argument("--shots", type=int, default=1024)
    submit.add_argument("--seed", type=int, default=0,
                        help="first suite seed (job i uses seed + i)")
    submit.add_argument("--no-wait", action="store_true",
                        help="print the ticket and return without waiting "
                             "for results")
    submit.add_argument("--timeout", type=float, default=None,
                        help="give up waiting after this many seconds")
    submit.add_argument("--json", action="store_true",
                        help="emit the final poll reply as JSON")

    status = sub.add_parser(
        "status",
        help="query a running serve daemon: queue, workers, metrics",
    )
    status.add_argument("--socket", required=True,
                        help="unix socket path of the daemon")
    status.add_argument("--prometheus", action="store_true",
                        help="print the daemon's metrics in Prometheus text "
                             "format instead of a status summary")
    status.add_argument("--json", action="store_true",
                        help="emit the raw status reply as JSON")

    top = sub.add_parser(
        "top",
        help="live terminal dashboard for a running serve daemon",
    )
    top.add_argument("--socket", required=True,
                     help="unix socket path of the daemon")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between dashboard refreshes")
    top.add_argument("--once", action="store_true",
                     help="print a single frame and exit (for scripts/CI)")
    top.add_argument("--no-color", action="store_true",
                     help="disable ANSI colors (default off non-TTY)")

    bench = sub.add_parser(
        "bench",
        help="record and gate benchmark results against history",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_compare = bench_sub.add_parser(
        "compare",
        help="compare BENCH/trajectory/history files chronologically; "
             "nonzero exit on regression",
    )
    bench_compare.add_argument(
        "files", nargs="+",
        help="BENCH_*.json, trajectory .jsonl, or flight-recorder history "
             "files, oldest first")
    bench_compare.add_argument("--floor", type=float, default=None,
                               help="widen every noise floor to at least this "
                                    "fraction (e.g. 0.4)")
    bench_compare.add_argument("--advisory", action="store_true",
                               help="report regressions but exit zero (CI on "
                                    "shared hardware)")
    bench_compare.add_argument("--json", action="store_true",
                               help="emit the comparison as JSON")
    bench_record = bench_sub.add_parser(
        "record",
        help="normalise BENCH files into one trajectory record",
    )
    bench_record.add_argument("files", nargs="+",
                              help="BENCH_*.json files to normalise")
    bench_record.add_argument("--label", required=True,
                              help="record label (e.g. pr6, ci-2026-08-08)")
    bench_record.add_argument("--out", default=None, metavar="FILE",
                              help="append the record to this trajectory JSONL "
                                   "(default: print it)")

    trace = sub.add_parser(
        "trace",
        help="inspect JSONL trace files written by --trace",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize",
        help="per-stage breakdown, coverage, critical path, cache table",
    )
    summarize.add_argument("tracefile", help="JSONL trace file to summarize")
    summarize.add_argument("--json", action="store_true",
                           help="emit the summary as JSON")
    return parser


def _cmd_mse_noisy(args: argparse.Namespace) -> int:
    from repro.core.reduction import GraphReducer
    from repro.datasets import random_connected_gnp
    from repro.qaoa.fast_sim import FastNoiseSpec
    from repro.qaoa.landscape import (
        compute_landscape,
        compute_noisy_landscape,
        landscape_mse,
    )
    from repro.quantum import get_backend

    backend = get_backend(args.device)
    graph = _maybe_weight(random_connected_gnp(args.nodes, 0.4, seed=args.seed),
                          args, args.seed)
    reduction = GraphReducer(seed=args.seed).reduce(graph)
    reduced = reduction.reduced_graph
    flavor = f" ({args.weight_dist}-weighted)" if args.weighted else ""
    print(f"graph: {args.nodes} nodes, {graph.number_of_edges()} edges{flavor}; "
          f"reduced: {reduced.number_of_nodes()} nodes "
          f"({reduction.node_reduction:.0%} node reduction); device: {backend.name}")

    ideal = compute_landscape(graph, width=args.width).values
    noisy_base = compute_noisy_landscape(
        graph, FastNoiseSpec.for_graph(backend, graph),
        width=args.width, trajectories=args.trajectories,
        shots=args.shots, seed=args.seed,
    ).values
    noisy_red = compute_noisy_landscape(
        reduced, FastNoiseSpec.for_graph(backend, reduced),
        width=args.width, trajectories=args.trajectories,
        shots=args.shots, seed=args.seed,
    ).values
    mse_base = landscape_mse(ideal, noisy_base)
    mse_red = landscape_mse(ideal, noisy_red)
    print(f"MSE noisy baseline vs ideal baseline: {mse_base:.4f}")
    print(f"MSE noisy Red-QAOA vs ideal baseline: {mse_red:.4f}")
    print(f"relative improvement: {(mse_base - mse_red) / mse_base:+.1%}")
    return 0


def _cmd_mse_ideal(args: argparse.Namespace) -> int:
    from repro.core.reduction import GraphReducer
    from repro.datasets import load_dataset
    from repro.qaoa.landscape import (
        evaluate_parameter_sets,
        landscape_mse,
        sample_parameter_sets,
    )

    graphs = load_dataset(
        args.graph_set, count=args.num_graphs,
        min_nodes=max(args.min_nodes, 3), max_nodes=args.max_nodes, seed=args.seed,
    )
    graphs = [_maybe_weight(g, args, args.seed + i) for i, g in enumerate(graphs)]
    reducer = GraphReducer(seed=args.seed)
    gammas, betas = sample_parameter_sets(args.p, args.num_points, seed=args.seed)
    node_reds, edge_reds, mses = [], [], []
    for graph in graphs:
        reduction = reducer.reduce(graph)
        reference = evaluate_parameter_sets(graph, gammas, betas)
        candidate = evaluate_parameter_sets(reduction.reduced_graph, gammas, betas)
        node_reds.append(reduction.node_reduction)
        edge_reds.append(reduction.edge_reduction)
        mses.append(landscape_mse(reference, candidate))
    print(f"dataset {args.graph_set}: {len(graphs)} graphs, p={args.p}, "
          f"{args.num_points} parameter sets")
    print(f"node reduction: {np.mean(node_reds):.1%}")
    print(f"edge reduction: {np.mean(edge_reds):.1%}")
    print(f"mean MSE:       {np.mean(mses):.4f}")
    return 0


def _cmd_end_to_end(args: argparse.Namespace) -> int:
    from repro.core.pipeline import RedQAOA
    from repro.datasets import random_connected_gnp
    from repro.qaoa.expectation import maxcut_expectation
    from repro.qaoa.optimizer import multi_restart_optimize
    from repro.utils.graphs import relabel_to_range

    best_ratios, avg_ratios = [], []
    for index in range(args.num_graphs):
        graph = _maybe_weight(
            random_connected_gnp(args.num_nodes, 0.4, seed=args.seed + index),
            args, args.seed + index,
        )
        relabeled = relabel_to_range(graph)
        fn = lambda g, b: maxcut_expectation(relabeled, g, b)
        baseline = multi_restart_optimize(
            fn, args.p, restarts=args.restarts, maxiter=args.maxiter,
            seed=args.seed + index,
        )
        base_values = [t.best_value for t in baseline]

        red = RedQAOA(p=args.p, restarts=args.restarts, maxiter=args.maxiter,
                      finetune_maxiter=10, seed=args.seed + index)
        reduction = red.reduce(graph)
        red_values = []
        for trace in red.optimize_reduced(reduction):
            g, b = trace.best_parameters
            red_values.append(maxcut_expectation(relabeled, g, b))
        best_ratios.append(max(red_values) / max(base_values))
        avg_ratios.append(np.mean(red_values) / np.mean(base_values))
    print(f"end-to-end over {args.num_graphs} graphs of {args.num_nodes} nodes, "
          f"p={args.p}, {args.restarts} restarts")
    print(f"Red-QAOA / baseline, best result:    {np.mean(best_ratios):.3f}")
    print(f"Red-QAOA / baseline, average result: {np.mean(avg_ratios):.3f}")
    print("(paper: ~1.00 best, >= 0.97 average)")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json
    import time

    import networkx as nx

    from repro.qaoa.landscape import sample_parameter_sets
    from repro.qaoa.lightcone import LightconePlan
    from repro.utils.graphs import relabel_to_range

    graph = nx.random_regular_graph(args.degree, args.nodes, seed=args.seed)
    graph = relabel_to_range(_maybe_weight(graph, args, args.seed))
    flavor = f" ({args.weight_dist}-weighted)" if args.weighted else ""
    gammas, betas = sample_parameter_sets(args.p, args.num_points, seed=args.seed)

    from repro.obs.trace import span, trace_job

    with _tracing(args.trace):
        with trace_job(f"sweep:n{args.nodes}-p{args.p}", command="sweep"):
            start = time.perf_counter()
            plan = LightconePlan.build(graph, args.p, max_qubits=args.max_qubits)
            build_seconds = time.perf_counter() - start
            start = time.perf_counter()
            with span("evaluate", points=args.num_points):
                values = plan.evaluate_batch(gammas, betas)
            eval_seconds = time.perf_counter() - start

    stats = plan.stats
    if args.json:
        print(json.dumps({
            "graph": {
                "nodes": args.nodes,
                "edges": graph.number_of_edges(),
                "degree": args.degree,
                "weighted": bool(args.weighted),
                "weight_dist": args.weight_dist if args.weighted else None,
            },
            "p": args.p,
            "num_points": args.num_points,
            "plan": dict(stats),
            "build_seconds": build_seconds,
            "evaluate_seconds": eval_seconds,
            "points_per_sec": args.num_points / max(eval_seconds, 1e-9),
            "energy": {
                "min": float(values.min()),
                "mean": float(values.mean()),
                "max": float(values.max()),
            },
        }, indent=2))
        return 0
    print(f"graph: {args.nodes} nodes, {graph.number_of_edges()} edges{flavor}, "
          f"{args.degree}-regular; p={args.p}, {args.num_points} parameter sets")
    print(f"plan: {stats['evaluations']} lightcone classes for {stats['edges']} edges "
          f"({stats['hits']} cache hits, "
          f"{stats['hits'] / max(stats['edges'], 1):.0%} dedup)")
    print(f"build: {build_seconds:.3f} s (paid once); evaluate: {eval_seconds:.3f} s "
          f"({args.num_points / max(eval_seconds, 1e-9):.1f} points/sec)")
    print(f"energy: min {values.min():.4f}, mean {values.mean():.4f}, "
          f"max {values.max():.4f}")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    import time

    from repro.core.pipeline import RedQAOA
    from repro.datasets import problem_instance
    from repro.problems import qubo_problem

    weighted = getattr(args, "weighted", False)
    if not weighted and args.weight_dist != "uniform":
        raise SystemExit(
            f"--weight-dist {args.weight_dist} has no effect without --weighted"
        )
    if weighted and args.problem not in ("maxcut", "sk"):
        raise SystemExit(
            f"--weighted does not apply to --problem {args.problem}; it selects "
            "maxcut edge weights or the sk coupling distribution"
        )
    if weighted and args.problem == "sk" and args.weight_dist not in ("gaussian", "spin"):
        raise SystemExit(
            "--problem sk draws couplings, not edge weights; pass "
            "--weight-dist gaussian or --weight-dist spin"
        )
    if args.qubo_file is not None:
        if args.problem != "qubo":
            raise SystemExit("--qubo-file requires --problem qubo")
        try:
            problem = qubo_problem(np.atleast_2d(np.loadtxt(args.qubo_file)))
        except (OSError, ValueError) as exc:
            raise SystemExit(f"error reading QUBO matrix {args.qubo_file!r}: {exc}")
    else:
        try:
            problem = problem_instance(
                args.problem,
                args.nodes,
                seed=args.seed,
                edge_probability=args.edge_prob,
                penalty=args.penalty,
                weight_distribution=args.weight_dist if weighted else None,
                qubo_density=args.qubo_density,
            )
        except ValueError as exc:
            raise SystemExit(f"error building the {args.problem} instance: {exc}")
    def say(line: str) -> None:
        if not args.json:
            print(line)

    say(f"problem: {problem.name}, {problem.num_qubits} qubits, "
        f"{problem.num_couplings} couplings, {len(problem.fields)} fields")

    start = time.perf_counter()
    # EngineLimitError: no exact engine for this size; plain ValueError:
    # degenerate instances (e.g. a QUBO with no couplings or fields) or
    # bad pipeline settings -- all user-input problems, not bugs.
    from repro.obs.trace import trace_job

    try:
        pipeline = RedQAOA(
            p=args.p, restarts=args.restarts, maxiter=args.maxiter,
            finetune_maxiter=args.finetune_maxiter, shots=args.shots, seed=args.seed,
        )
        with _tracing(args.trace):
            with trace_job(f"solve:{problem.name}", command="solve"):
                result = pipeline.run(problem=problem)
    except ValueError as exc:  # EngineLimitError subclasses ValueError
        raise SystemExit(f"error: {exc}")
    elapsed = time.perf_counter() - start

    reduction = result.reduction
    say(f"reduced: {reduction.subproblem.num_qubits} qubits "
        f"({reduction.node_reduction:.0%} node reduction, "
        f"AND ratio {reduction.and_ratio:.2f})")
    say(f"evaluations: {result.num_reduced_evaluations} on the subproblem, "
        f"{result.num_original_evaluations} on the full problem")
    say(f"parameters: gamma={np.round(result.gammas, 3)}, "
        f"beta={np.round(result.betas, 3)}")
    say(f"expectation on the full problem: {result.expectation:.4f}")
    if np.isfinite(result.cut_value):
        say(f"best sampled value ({args.shots} shots): {result.cut_value:.4f}")
    else:
        say("readout skipped (problem exceeds the dense sampling cap)")
    # Seeded so large instances (local-search fallback) stay reproducible.
    # Below the dense cap the pipeline's readout already cached the
    # diagonal, so best_value is the exact optimum there.
    from repro.problems import MAX_DENSE_QUBITS

    best = problem.best_value(seed=args.seed)
    exact = problem.num_qubits <= MAX_DENSE_QUBITS
    say(f"classical best value{'' if exact else ' (local-search bound)'}: {best:.4f}")
    ratio = None
    if best > 0 and np.isfinite(result.cut_value):
        ratio = result.cut_value / best
        say(f"approximation ratio (sampled / best): {ratio:.3f}")
    say(f"wall time: {elapsed:.2f} s")
    if args.json:
        import json

        print(json.dumps({
            "problem": {
                "name": problem.name,
                "num_qubits": problem.num_qubits,
                "num_couplings": problem.num_couplings,
                "num_fields": len(problem.fields),
            },
            "reduction": {
                "qubits": reduction.subproblem.num_qubits,
                "node_reduction": reduction.node_reduction,
                "and_ratio": reduction.and_ratio,
            },
            "evaluations": {
                "reduced": result.num_reduced_evaluations,
                "original": result.num_original_evaluations,
            },
            "gammas": [float(g) for g in result.gammas],
            "betas": [float(b) for b in result.betas],
            "expectation": result.expectation,
            "sampled_best": (
                float(result.cut_value) if np.isfinite(result.cut_value) else None
            ),
            "shots": args.shots,
            "classical_best": best,
            "classical_exact": exact,
            "approximation_ratio": ratio,
            "seconds": elapsed,
        }, indent=2))
    return 0


def _manifest_from_args(args: argparse.Namespace) -> dict:
    """Resolve ``batch``/``submit`` arguments into one manifest mapping."""
    from repro.datasets import suite_manifest
    from repro.service import load_manifest

    if (args.manifest is None) == (args.suite is None):
        raise SystemExit("pass exactly one of a manifest file or --suite KIND")
    if args.manifest is not None:
        try:
            return load_manifest(args.manifest)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"error reading manifest {args.manifest!r}: {exc}")
    generator = {}
    if args.suite in ("maxcut", "mis", "vertex-cover"):
        generator["edge_probability"] = args.edge_prob
    if args.weight_dist is not None:
        generator["weight_dist"] = args.weight_dist
    if args.suite in ("mis", "vertex-cover"):
        generator["penalty"] = args.penalty
    if args.suite == "qubo":
        generator["qubo_density"] = args.qubo_density
    return suite_manifest(
        args.suite,
        count=args.count,
        num_qubits=args.nodes,
        seed=args.seed,
        generator=generator,
        p=args.p,
        restarts=args.restarts,
        maxiter=args.maxiter,
        finetune_maxiter=args.finetune_maxiter,
        shots=args.shots,
    )


def _cmd_batch(args: argparse.Namespace) -> int:
    import json

    from repro.service import Campaign

    manifest = _manifest_from_args(args)

    def progress(spec, result):
        if not args.json:
            best = (
                f"{result.best_value:.4f}"
                if result.best_value == result.best_value
                else "n/a"
            )
            print(f"  done {spec.label}: expectation={result.expectation:.4f}, "
                  f"best={best}")

    try:
        campaign = Campaign.from_manifest(
            manifest,
            store_path=args.store,
            reduction_reuse=args.reuse,
            workers=args.workers,
            pool=args.pool,
        )
    except ValueError as exc:
        raise SystemExit(f"error building the campaign: {exc}")
    with _tracing(args.trace):
        report = campaign.run(on_result=progress)
    if args.report is not None:
        report.write(args.report)
    payload = report.to_dict()
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    batch = report.batch
    store_note = f" (store: {args.store})" if args.store else ""
    print(f"manifest: {batch.num_jobs} jobs, {batch.num_unique} unique, "
          f"{batch.num_instances} instances")
    print(f"executed: {batch.computed} computed, {batch.store_hits} store hits, "
          f"{batch.deduped} deduped{store_note}")
    print(f"reuse: {batch.reduction_reuses} shared reductions, "
          f"{batch.reduction_cross_hits} cross-instance, "
          f"{batch.plan_hits} plan hits")
    for label in sorted(payload["aggregates"]):
        agg = payload["aggregates"][label]
        best = agg["mean_best_value"]
        best_text = f"{best:.4f}" if best is not None else "n/a"
        print(f"  {label:<28} count={agg['count']}  "
              f"expectation={agg['mean_expectation']:.4f}  best={best_text}")
    print(f"wall time: {batch.seconds:.2f} s")
    if args.report is not None:
        print(f"report written to {args.report}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs.log import EventLog
    from repro.serve import ServeDaemon

    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    daemon = ServeDaemon(
        socket_path=args.socket,
        store_path=args.store,
        workers=args.workers,
        shard_prefix=args.shard_prefix,
        high_water=args.high_water,
        max_attempts=args.max_attempts,
        trace_path=args.trace,
        log=EventLog(
            level=args.log_level,
            json_mode=args.log_json,
            path=args.log_file,
            max_bytes=args.log_max_bytes,
        ),
        history_path=args.history,
        history_interval=args.history_interval,
        stuck_after=args.stuck_after,
        health_window=args.health_window,
        stuck_requeue=args.stuck_requeue,
    )
    store_note = f", store {args.store}" if args.store else ""
    trace_note = f", trace {args.trace}" if args.trace else ""
    print(f"serving on {args.socket} with {args.workers} worker(s)"
          f"{store_note}{trace_note}; SIGTERM drains and exits", flush=True)
    daemon.serve_forever()
    print("daemon stopped")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.serve import Backpressure, ServeClient, ServeError

    manifest = _manifest_from_args(args)
    client = ServeClient(args.socket)
    try:
        reply = client.submit_with_retry(manifest)
    except Backpressure as exc:
        raise SystemExit(
            f"daemon overloaded (retry after {exc.retry_after:.1f}s): {exc}"
        )
    except (ServeError, OSError) as exc:
        raise SystemExit(f"submit failed: {exc}")
    ticket = reply["ticket"]
    cached = sum(1 for job in reply["jobs"] if job["status"] == "cached")
    if not args.json:
        print(f"ticket {ticket}: {len(reply['jobs'])} jobs "
              f"({cached} already cached)")
    if args.no_wait:
        if args.json:
            print(json.dumps(reply, indent=2))
        return 0
    try:
        final = client.wait(ticket, timeout=args.timeout)
    except TimeoutError as exc:
        raise SystemExit(str(exc))
    except (ServeError, OSError) as exc:
        raise SystemExit(f"poll failed: {exc}")
    dead = final["counts"].get("dead", 0)
    if args.json:
        print(json.dumps(final, indent=2))
        return 0 if not dead else 1
    for entry in final["jobs"]:
        if entry["status"] == "done":
            result = entry["result"]
            best = result["best_value"]
            best_text = f"{best:.4f}" if best is not None else "n/a"
            print(f"  done {entry['label']}: "
                  f"expectation={result['expectation']:.4f}, best={best_text}")
        else:
            print(f"  DEAD {entry['label']}: {entry.get('error', 'unknown error')}")
    print(f"ticket {ticket}: {final['counts'].get('done', 0)} done, {dead} dead")
    return 0 if not dead else 1


def _cmd_status(args: argparse.Namespace) -> int:
    import json

    from repro.serve import ServeClient, ServeError

    client = ServeClient(args.socket)
    try:
        if args.prometheus:
            print(client.metrics()["prometheus"], end="")
            return 0
        reply = client.status()
    except (ServeError, OSError) as exc:
        raise SystemExit(f"status failed: {exc}")
    if args.json:
        print(json.dumps(reply, indent=2))
        return 0
    queue = reply.get("queue", {})
    workers = reply.get("workers", {})
    print(f"daemon v{reply.get('version')} (protocol {reply.get('protocol')}), "
          f"uptime {reply.get('uptime', 0.0):.1f}s"
          f"{', draining' if reply.get('draining') else ''}")
    print(f"queue: depth={queue.get('depth')} running={queue.get('running')} "
          f"completed={queue.get('completed')} dead={queue.get('dead')} "
          f"rejected={queue.get('rejected')} crashes={queue.get('crashes')}")
    print(f"workers: {workers.get('count')} "
          f"(pids {workers.get('pids')}, respawns {workers.get('respawns')})")
    store = reply.get("store")
    if store:
        print(f"store: {store['results']} results, "
              f"{store['dead_letters']} dead letters ({store['path']})")
    counters = reply.get("metrics", {}).get("counters", {})
    if counters:
        shown = {
            name.removeprefix("redqaoa_"): int(value)
            for name, value in sorted(counters.items())
            if value
        }
        print("counters: " + ", ".join(f"{k}={v}" for k, v in shown.items()))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.top import run_top
    from repro.serve import ServeError

    try:
        return run_top(
            args.socket,
            interval=args.interval,
            once=args.once,
            color=False if args.no_color else None,
        )
    except (ServeError, OSError) as exc:
        raise SystemExit(f"top failed: {exc}")


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.obs.regress import append_record, compare, load_records, make_record

    if args.bench_command == "record":
        try:
            record = make_record(args.label, args.files)
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(f"error reading benchmark files: {exc}")
        if not record["metrics"]:
            raise SystemExit("no recognised metrics in the given files")
        if args.out is not None:
            append_record(args.out, record)
            print(f"recorded {len(record['metrics'])} metrics as "
                  f"{args.label!r} in {args.out}")
        else:
            print(json.dumps(record, indent=2, sort_keys=True))
        return 0

    try:
        records = load_records(args.files)
    except (OSError, ValueError, KeyError) as exc:
        raise SystemExit(f"error reading benchmark files: {exc}")
    outcome = compare(records, default_floor=args.floor)
    if args.json:
        print(json.dumps(outcome, indent=2, sort_keys=True))
    else:
        if not outcome["rows"]:
            print("no overlapping metrics to compare (baseline recorded)")
        for row in outcome["rows"]:
            mark = "REGRESSED" if row["regressed"] else "ok"
            print(f"  {mark:<9} {row['metric']:<28} "
                  f"{row['baseline_label']} {row['baseline']:.4g} -> "
                  f"{row['label']} {row['value']:.4g} "
                  f"({row['change']:+.1%}, floor {row['floor']:.0%})")
        regressed = len(outcome["regressions"])
        verdict = (
            f"{regressed} regression(s)" if regressed
            else f"no regressions across {len(outcome['rows'])} comparison(s)"
        )
        print(("ADVISORY: " if args.advisory and regressed else "") + verdict)
    if outcome["ok"] or args.advisory:
        return 0
    return 1


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs.trace import format_summary, summarize_trace

    try:
        summary = summarize_trace(args.tracefile)
    except OSError as exc:
        raise SystemExit(f"error reading trace {args.tracefile!r}: {exc}")
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(format_summary(summary), end="")
    return 0 if not summary["problems"] else 1


_COMMANDS = {
    "mse-noisy": _cmd_mse_noisy,
    "mse-ideal": _cmd_mse_ideal,
    "end-to-end": _cmd_end_to_end,
    "sweep": _cmd_sweep,
    "solve": _cmd_solve,
    "batch": _cmd_batch,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "top": _cmd_top,
    "bench": _cmd_bench,
    "trace": _cmd_trace,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
